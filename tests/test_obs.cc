/**
 * @file
 * Tests for the observability layer (recsim::obs): metrics registry
 * semantics, tracer span bookkeeping, Chrome-trace JSON export, and —
 * the point of the subsystem — trace-validated training loops: a traced
 * run must produce balanced spans, one iteration span per optimizer
 * step, forward strictly before backward, and one wall-clock track per
 * Hogwild worker.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "obs/drift.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "obs/trace.h"
#include "stats/log_histogram.h"
#include "train/hogwild.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace recsim::obs {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON well-formedness parser (objects, arrays, strings,
// numbers, literals) so the trace export is validated without external
// dependencies. Returns true iff the whole document parses.
// ---------------------------------------------------------------------

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool parseValue()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't': return parseLiteral("true");
        case 'f': return parseLiteral("false");
        case 'n': return parseLiteral("null");
        default: return parseNumber();
        }
    }

    bool parseObject()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool parseArray()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool parseString()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '"') { ++pos_; return true; }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;  // raw control char: escaping bug
            ++pos_;
        }
        return false;
    }

    bool parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool parseLiteral(const char* lit)
    {
        const std::string s(lit);
        if (text_.compare(pos_, s.size(), s) != 0)
            return false;
        pos_ += s.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : 0; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

#ifndef RECSIM_OBS_DISABLED
/** Spans with @p name across all wall-clock tracks, sorted by start. */
std::vector<SpanRecord>
spansNamed(const std::vector<TrackRecord>& tracks,
           const std::string& name)
{
    std::vector<SpanRecord> result;
    for (const TrackRecord& track : tracks) {
        if (track.simulated)
            continue;
        for (const SpanRecord& span : track.spans) {
            if (span.name == name)
                result.push_back(span);
        }
    }
    std::sort(result.begin(), result.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.start_ns < b.start_ns;
              });
    return result;
}
#endif  // RECSIM_OBS_DISABLED

class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Tracer::global().reset();
        MetricsRegistry::global().reset();
        Tracer::global().setEnabled(true);
    }

    void TearDown() override
    {
        Tracer::global().setEnabled(false);
        Tracer::global().reset();
        MetricsRegistry::global().reset();
    }
};

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST_F(ObsTest, MetricsCountersGaugesTimings)
{
    auto& metrics = MetricsRegistry::global();
    metrics.incr("requests");
    metrics.incr("requests", 4);
    EXPECT_EQ(metrics.counter("requests"), 5u);
    EXPECT_EQ(metrics.counter("missing"), 0u);

    metrics.set("queue_depth", 7.5);
    metrics.set("queue_depth", 3.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("queue_depth"), 3.0);

    metrics.observe("latency", 1.0);
    metrics.observe("latency", 3.0);
    const auto stat = metrics.timing("latency");
    EXPECT_EQ(stat.count(), 2u);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.0);

    const std::string report = metrics.report();
    EXPECT_NE(report.find("requests"), std::string::npos);
    EXPECT_NE(report.find("latency"), std::string::npos);

    metrics.reset();
    EXPECT_EQ(metrics.counter("requests"), 0u);
    EXPECT_EQ(metrics.size(), 0u);
}

// ---------------------------------------------------------------------
// Tracer core semantics
// ---------------------------------------------------------------------

TEST_F(ObsTest, SpansBalanceAndNest)
{
    {
        TraceSpan outer("outer");
        { TraceSpan inner("inner"); }
        EXPECT_EQ(Tracer::global().numOpenSpans(), 1u);
    }
    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    EXPECT_EQ(Tracer::global().numSpans(), 2u);

    const auto tracks = Tracer::global().snapshot();
    ASSERT_EQ(tracks.size(), 1u);
    const auto& spans = tracks[0].spans;
    ASSERT_EQ(spans.size(), 2u);
    // Inner closes first; depth recorded relative to the stack.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0);
    EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
    EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
}

TEST_F(ObsTest, DisabledPathEmitsNothing)
{
    Tracer::global().setEnabled(false);
    {
        TraceSpan span("ignored");
        RECSIM_TRACE_SPAN("also_ignored");
    }
    Tracer::global().addSimSpan("node", "busy", 10, 20);
    EXPECT_EQ(Tracer::global().numSpans(), 0u);
    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
}

TEST_F(ObsTest, ResetClearsEverything)
{
    { TraceSpan span("work"); }
    Tracer::global().addSimSpan("node", "busy", 0, 5);
    EXPECT_GT(Tracer::global().numSpans(), 0u);

    Tracer::global().reset();
    EXPECT_EQ(Tracer::global().numSpans(), 0u);
    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    for (const auto& track : Tracer::global().snapshot())
        EXPECT_TRUE(track.spans.empty());

    // The tracer stays usable after reset (thread tracks survive).
    { TraceSpan span("again"); }
    EXPECT_EQ(Tracer::global().numSpans(), 1u);
}

TEST_F(ObsTest, SimSpansLandOnSimulatedTracks)
{
    Tracer::global().addSimSpan("trainer0.cpu", "busy", 1000, 3000);
    Tracer::global().addSimSpan("trainer0.cpu", "busy", 3000, 4000);
    Tracer::global().addSimSpan("ps0.nic", "busy", 500, 1500);

    std::size_t sim_tracks = 0;
    for (const auto& track : Tracer::global().snapshot()) {
        if (!track.simulated)
            continue;
        ++sim_tracks;
        for (const auto& span : track.spans) {
            EXPECT_EQ(span.name, "busy");
            EXPECT_LT(span.start_ns, span.end_ns);
        }
    }
    EXPECT_EQ(sim_tracks, 2u);
}

TEST_F(ObsTest, ScopedTimerRecordsMetricAndSpan)
{
    {
        ScopedTimer timer("phase.setup");
    }
    EXPECT_EQ(MetricsRegistry::global().timing("phase.setup").count(),
              1u);
    EXPECT_EQ(Tracer::global().numSpans(), 1u);

    // With tracing disabled the metric still records; the span does not.
    Tracer::global().setEnabled(false);
    {
        ScopedTimer timer("phase.setup");
    }
    EXPECT_EQ(MetricsRegistry::global().timing("phase.setup").count(),
              2u);
    EXPECT_EQ(Tracer::global().numSpans(), 1u);
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonParsesAndCarriesBothTimelines)
{
    {
        TraceSpan span("wall \"work\"\n");  // exercises escaping
    }
    Tracer::global().addSimSpan("trainer0.cpu", "busy", 1000, 2000);

    const std::string json = Tracer::global().chromeTraceJson();
    EXPECT_TRUE(JsonParser(json).parse()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("recsim wall clock"), std::string::npos);
    EXPECT_NE(json.find("recsim simulated time"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // The raw newline and quote must have been escaped.
    EXPECT_NE(json.find("wall \\\"work\\\"\\n"), std::string::npos);
}

TEST_F(ObsTest, SummaryAttributesTime)
{
    {
        TraceSpan span("top");
        TraceSpan inner("inner");
    }
    Tracer::global().addSimSpan("node0", "busy", 0, 1000000);
    const std::string summary = Tracer::global().summary();
    EXPECT_NE(summary.find("top"), std::string::npos);
    EXPECT_NE(summary.find("busy"), std::string::npos);
    EXPECT_NE(summary.find("attributed"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace-validated training loops
// ---------------------------------------------------------------------

#ifndef RECSIM_OBS_DISABLED
model::DlrmConfig
tinyModel()
{
    return model::DlrmConfig::tinyReplica(4, 8, 500, 8);
}

data::DatasetConfig
tinyData()
{
    const auto m = tinyModel();
    data::DatasetConfig cfg;
    cfg.num_dense = m.num_dense;
    cfg.sparse = m.sparse;
    cfg.seed = 99;
    return cfg;
}

// The two loop-tracing tests assert on spans emitted through the
// RECSIM_TRACE_SPAN macro, which compiles to nothing in obs-disabled
// builds — there is deliberately nothing to observe there.

TEST_F(ObsTest, SingleThreadTrainingLoopIsFullyTraced)
{
    constexpr std::size_t kBatch = 64;
    constexpr std::size_t kEval = 256;
    constexpr std::size_t kSteps = 12;
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(kSteps * kBatch + kEval);
    train::TrainConfig cfg;
    cfg.batch_size = kBatch;
    cfg.epochs = 1;
    train::trainSingleThread(tinyModel(), ds, cfg, kEval);

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    const auto tracks = Tracer::global().snapshot();

    // Exactly one iteration span per optimizer step.
    const auto iterations = spansNamed(tracks, "train.iteration");
    ASSERT_EQ(iterations.size(), kSteps);
    EXPECT_EQ(MetricsRegistry::global().counter("train.iterations"),
              static_cast<uint64_t>(kSteps));
    EXPECT_EQ(
        MetricsRegistry::global().timing("train.iteration_seconds")
            .count(),
        kSteps);

    // Every iteration carries data / fwd_bwd / optimizer phases, and
    // within the model, forward strictly precedes backward.
    const auto data_spans = spansNamed(tracks, "train.data");
    const auto fwd_bwd = spansNamed(tracks, "train.fwd_bwd");
    const auto opt = spansNamed(tracks, "train.optimizer");
    EXPECT_EQ(data_spans.size(), kSteps);
    EXPECT_EQ(fwd_bwd.size(), kSteps);
    EXPECT_EQ(opt.size(), kSteps);

    const auto fwd = spansNamed(tracks, "model.fwd");
    const auto bwd = spansNamed(tracks, "model.bwd");
    // Forward also runs during evaluation, so fwd >= bwd == steps.
    ASSERT_EQ(bwd.size(), kSteps);
    ASSERT_GE(fwd.size(), kSteps);
    for (std::size_t i = 0; i < kSteps; ++i) {
        // The i-th training forward ends before the i-th backward
        // begins, and both nest inside the i-th iteration span.
        EXPECT_LE(fwd[i].end_ns, bwd[i].start_ns);
        EXPECT_GE(fwd[i].start_ns, iterations[i].start_ns);
        EXPECT_LE(bwd[i].end_ns, iterations[i].end_ns);
    }

    // Phases tile the iteration: data before fwd_bwd before optimizer.
    for (std::size_t i = 0; i < kSteps; ++i) {
        EXPECT_LE(data_spans[i].end_ns, fwd_bwd[i].start_ns);
        EXPECT_LE(fwd_bwd[i].end_ns, opt[i].start_ns);
    }
}

TEST_F(ObsTest, HogwildWorkersGetTheirOwnTracks)
{
    constexpr std::size_t kThreads = 3;
    data::SyntheticCtrDataset ds(tinyData());
    ds.materialize(4096);
    train::HogwildConfig cfg;
    cfg.num_threads = kThreads;
    cfg.base.batch_size = 64;
    cfg.base.epochs = 1;
    train::trainHogwild(tinyModel(), ds, cfg, 1024);

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);

    // Each worker thread records its iterations on a distinct track.
    std::size_t worker_tracks = 0;
    std::size_t total_iterations = 0;
    for (const auto& track : Tracer::global().snapshot()) {
        if (track.simulated)
            continue;
        std::size_t iters = 0;
        for (const auto& span : track.spans) {
            if (span.name == "hogwild.iteration")
                ++iters;
        }
        if (iters > 0) {
            ++worker_tracks;
            total_iterations += iters;
        }
    }
    EXPECT_EQ(worker_tracks, kThreads);
    EXPECT_EQ(
        MetricsRegistry::global().counter("hogwild.iterations"),
        static_cast<uint64_t>(total_iterations));

    // The export of a genuinely multi-threaded trace still parses.
    const std::string json = Tracer::global().chromeTraceJson();
    EXPECT_TRUE(JsonParser(json).parse());
}

#endif  // RECSIM_OBS_DISABLED

TEST_F(ObsTest, ConcurrentSpansFromManyThreadsStayBalanced)
{
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                TraceSpan outer("outer");
                TraceSpan inner("inner");
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    EXPECT_EQ(Tracer::global().numSpans(),
              static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
    EXPECT_TRUE(JsonParser(Tracer::global().chromeTraceJson()).parse());
}

TEST_F(ObsTest, ReadersRacingWritersSeeConsistentState)
{
    // The executor's worker threads emit spans while other code (the
    // trainer's metrics, a trace dump) reads the tracer concurrently.
    // Run writers and readers together — under TSan this is the data-
    // race proof for the span path; everywhere else it checks the
    // reader always sees complete (begin+end) spans.
    constexpr int kWriters = 4;
    constexpr int kSpansPerWriter = 300;
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerWriter; ++i) {
                TraceSpan outer("outer");
                TraceSpan inner("inner");
            }
        });
    }
    threads.emplace_back([] {
        for (int i = 0; i < 50; ++i) {
            const auto tracks = Tracer::global().snapshot();
            for (const auto& track : tracks) {
                for (const auto& span : track.spans) {
                    // A recorded span is always finished.
                    EXPECT_LE(span.start_ns, span.end_ns);
                }
            }
            (void)Tracer::global().numSpans();
            (void)Tracer::global().numOpenSpans();
        }
    });
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(Tracer::global().numOpenSpans(), 0u);
    EXPECT_EQ(Tracer::global().numSpans(),
              static_cast<std::size_t>(kWriters) * kSpansPerWriter * 2);
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

class FlightRecorderTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        auto& rec = FlightRecorder::global();
        rec.setEnabled(false);
        rec.configure(1024);
    }

    void TearDown() override
    {
        auto& rec = FlightRecorder::global();
        rec.setEnabled(false);
        rec.reset();
    }
};

TEST_F(FlightRecorderTest, DisabledRecordIsDroppedBeforeAnyWork)
{
    auto& rec = FlightRecorder::global();
    const uint32_t ch = rec.internChannel("test.disabled");
    rec.record(ch, 0, 1.0);
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.totalRecorded(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST_F(FlightRecorderTest, SamplesRoundTripThroughSnapshot)
{
    auto& rec = FlightRecorder::global();
    rec.setEnabled(true);
    const uint32_t a = rec.internChannel("test.chan_a");
    const uint32_t b = rec.internChannel("test.chan_b");
    rec.record(a, 7, 0.5, 64);
    rec.record(b, 7, 2.5);
    rec.record(a, 8, 1.5, 32);
    rec.setEnabled(false);

    EXPECT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.totalRecorded(), 3u);
    EXPECT_EQ(rec.dropped(), 0u);

    const auto samples = rec.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    // Sorted by (t_ns, step, channel); the tiebreak keys increase in
    // record order here, so the single-writer order is preserved.
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i].t_ns, samples[i - 1].t_ns);
    EXPECT_EQ(samples[0].channel, a);
    EXPECT_EQ(samples[0].step, 7u);
    EXPECT_EQ(samples[0].rows, 64u);
    EXPECT_DOUBLE_EQ(samples[0].value, 0.5);
    EXPECT_EQ(samples[1].channel, b);
    EXPECT_EQ(samples[1].rows, 0u);
    EXPECT_DOUBLE_EQ(samples[2].value, 1.5);
}

TEST_F(FlightRecorderTest, RingOverwriteKeepsNewestAndCountsDropped)
{
    auto& rec = FlightRecorder::global();
    const std::size_t per_stripe = 2;
    rec.configure(per_stripe * rec.numStripes());
    rec.setEnabled(true);
    const uint32_t ch = rec.internChannel("test.ring");
    for (int i = 0; i < 10; ++i)
        rec.record(ch, static_cast<uint64_t>(i),
                   static_cast<double>(i));
    rec.setEnabled(false);

    // A single writer thread lands on one stripe, so retention is the
    // per-stripe share of the configured capacity.
    EXPECT_EQ(rec.size(), per_stripe);
    EXPECT_EQ(rec.totalRecorded(), 10u);
    EXPECT_EQ(rec.dropped(), 10u - per_stripe);

    const auto samples = rec.snapshot();
    ASSERT_EQ(samples.size(), per_stripe);
    EXPECT_DOUBLE_EQ(samples[0].value, 8.0);
    EXPECT_DOUBLE_EQ(samples[1].value, 9.0);
}

TEST_F(FlightRecorderTest, ChannelIdsAreDenseStableAndSurviveReset)
{
    auto& rec = FlightRecorder::global();
    const uint32_t a = rec.internChannel("test.stable_a");
    const uint32_t b = rec.internChannel("test.stable_b");
    EXPECT_NE(a, b);
    EXPECT_EQ(rec.internChannel("test.stable_a"), a);
    EXPECT_EQ(rec.channelName(a), "test.stable_a");
    const auto names = rec.channels();
    ASSERT_GT(names.size(), std::max(a, b));
    EXPECT_EQ(names[a], "test.stable_a");
    EXPECT_EQ(names[b], "test.stable_b");

    rec.reset();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.totalRecorded(), 0u);
    EXPECT_EQ(rec.internChannel("test.stable_a"), a);
    EXPECT_EQ(rec.channelName(b), "test.stable_b");
    EXPECT_EQ(rec.channelName(0xffffffffu), "?");
}

TEST_F(FlightRecorderTest, ConcurrentWritersAndReadersStayConsistent)
{
    auto& rec = FlightRecorder::global();
    rec.configure(1 << 16);
    rec.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    const uint32_t ch = rec.internChannel("test.concurrent");
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&rec, ch, t] {
            for (int i = 0; i < kPerThread; ++i)
                rec.record(ch, static_cast<uint64_t>(t), 1.0);
        });
    }
    // A racing reader: under TSan this is the data-race proof for the
    // striped snapshot path.
    threads.emplace_back([&rec] {
        for (int i = 0; i < 50; ++i) {
            const auto samples = rec.snapshot();
            EXPECT_LE(samples.size(), rec.capacity());
            (void)rec.size();
            (void)rec.dropped();
        }
    });
    for (auto& thread : threads)
        thread.join();
    rec.setEnabled(false);

    // Capacity exceeds the offered volume, so nothing is dropped.
    EXPECT_EQ(rec.totalRecorded(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(rec.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    EXPECT_EQ(rec.dropped(), 0u);
    EXPECT_EQ(rec.snapshot().size(), rec.size());
}

// ---------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------

TEST(DriftMonitorTest, FlagsOnlyTheDriftedNode)
{
    DriftMonitor monitor({{"mlp", 1e-3}, {"emb", 2e-3}});
    for (int i = 0; i < 5; ++i) {
        monitor.observeNode("mlp", 1e-3);  // ratio 1.0
        monitor.observeNode("emb", 6e-3);  // ratio 3.0
    }
    const DriftReport report = monitor.report();
    ASSERT_EQ(report.nodes.size(), 2u);
    // Prediction order: node ids sorted.
    EXPECT_EQ(report.nodes[0].node_id, "emb");
    EXPECT_EQ(report.nodes[1].node_id, "mlp");
    EXPECT_TRUE(report.nodes[0].flagged);
    EXPECT_NEAR(report.nodes[0].ratio, 3.0, 1e-9);
    EXPECT_FALSE(report.nodes[1].flagged);
    EXPECT_EQ(report.flaggedNodes(),
              (std::vector<std::string>{"emb"}));
    EXPECT_NEAR(report.worst_abs_log_ratio, std::log(3.0), 1e-9);
}

TEST(DriftMonitorTest, TooFewSamplesNeverFlag)
{
    DriftConfig config;
    config.min_samples = 3;
    DriftMonitor monitor({{"mlp", 1e-3}}, config);
    monitor.observeNode("mlp", 9e-3);
    monitor.observeNode("mlp", 9e-3);
    const DriftReport report = monitor.report();
    ASSERT_EQ(report.nodes.size(), 1u);
    EXPECT_FALSE(report.nodes[0].flagged);
    EXPECT_EQ(report.nodes[0].samples, 2u);
    EXPECT_DOUBLE_EQ(report.nodes[0].ratio, 0.0);
    EXPECT_DOUBLE_EQ(report.worst_abs_log_ratio, 0.0);
}

TEST(DriftMonitorTest, FasterThanPredictedAlsoFlags)
{
    DriftMonitor monitor({{"mlp", 1e-3}});
    for (int i = 0; i < 4; ++i)
        monitor.observeNode("mlp", 0.5e-3);  // ratio 0.5 < 1/1.5
    const DriftReport report = monitor.report();
    EXPECT_EQ(report.flaggedNodes(),
              (std::vector<std::string>{"mlp"}));
}

TEST(DriftMonitorTest, StragglerStepsFlagAgainstRollingMedian)
{
    DriftConfig config;
    config.median_window = 8;
    config.warmup_steps = 4;
    DriftMonitor monitor({}, config);
    for (uint64_t step = 0; step < 20; ++step) {
        double seconds = 1e-3;
        // Two spikes: one inside the warmup (never flagged), one in
        // steady state.
        if (step == 2 || step == 12)
            seconds = 5e-3;
        monitor.observeStep(step, seconds);
    }
    const DriftReport report = monitor.report();
    EXPECT_EQ(report.steps_observed, 20u);
    ASSERT_EQ(report.stragglers.size(), 1u);
    EXPECT_EQ(report.stragglers[0].step, 12u);
    EXPECT_NEAR(report.stragglers[0].median_s, 1e-3, 1e-12);
    EXPECT_NEAR(report.stragglers[0].ratio, 5.0, 1e-9);
}

TEST_F(FlightRecorderTest, DriftIngestSumsNodeSamplesPerStep)
{
    auto& rec = FlightRecorder::global();
    rec.setEnabled(true);
    const uint32_t node = rec.internChannel("test_node.l0");
    const uint32_t step_ch = rec.internChannel("train.step_s");
    const uint32_t other = rec.internChannel("test.unrelated");
    for (uint64_t step = 0; step < 5; ++step) {
        rec.record(node, step, 0.4e-3);  // forward visit
        rec.record(node, step, 0.6e-3);  // backward visit
        rec.record(step_ch, step, 2e-3);
        rec.record(other, step, 42.0);
    }
    rec.setEnabled(false);

    DriftMonitor monitor({{"test_node.l0", 1e-3}});
    monitor.ingest(rec, rec.snapshot());
    const DriftReport report = monitor.report();
    EXPECT_EQ(report.steps_observed, 5u);
    ASSERT_EQ(report.nodes.size(), 1u);
    // The two visits per step sum to the whole-iteration node time,
    // matching the cost model's prediction granularity: one aggregated
    // sample per step and a ratio of exactly 1.
    EXPECT_EQ(report.nodes[0].samples, 5u);
    EXPECT_NEAR(report.nodes[0].ratio, 1.0, 1e-9);
    EXPECT_FALSE(report.nodes[0].flagged);
    EXPECT_TRUE(report.flaggedNodes().empty());
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST_F(ObsTest, PrometheusNameSanitizes)
{
    EXPECT_EQ(prometheusName("train.step_s"), "recsim_train_step_s");
    EXPECT_EQ(prometheusName("serve/latency-p99"),
              "recsim_serve_latency_p99");
    EXPECT_EQ(prometheusName("ok_name:sub"), "recsim_ok_name:sub");
}

TEST_F(ObsTest, PrometheusTextExposesAllMetricKinds)
{
    auto& metrics = MetricsRegistry::global();
    metrics.incr("serve.requests", 5);
    metrics.set("queue.depth", 2.5);
    metrics.observe("step.latency", 1.0);
    metrics.observe("step.latency", 3.0);

    const std::string text = prometheusText(metrics);
    EXPECT_NE(text.find("# TYPE recsim_serve_requests counter\n"
                        "recsim_serve_requests 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE recsim_queue_depth gauge\n"
                        "recsim_queue_depth 2.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("recsim_step_latency_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("recsim_step_latency_sum 4"),
              std::string::npos);
    EXPECT_NE(text.find("recsim_step_latency_min 1"),
              std::string::npos);
    EXPECT_NE(text.find("recsim_step_latency_max 3"),
              std::string::npos);
}

TEST_F(ObsTest, PrometheusHistogramBucketsAreCumulative)
{
    stats::LogHistogram hist(0.01, 1e-6, 10.0);
    for (const double v : {0.001, 0.001, 0.002, 0.5, 0.5})
        hist.add(v);

    const std::string text =
        prometheusHistogram("serve.latency_s", hist.snapshot());
    EXPECT_NE(text.find("# TYPE recsim_serve_latency_s histogram"),
              std::string::npos);
    EXPECT_NE(text.find("recsim_serve_latency_s_count 5"),
              std::string::npos);
    EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 5"), std::string::npos);

    // le-labelled bucket counts are cumulative: nondecreasing, ending
    // at the total count.
    uint64_t prev = 0;
    std::size_t buckets = 0;
    std::size_t pos = 0;
    while ((pos = text.find("\"} ", pos)) != std::string::npos) {
        pos += 3;
        const uint64_t cum = std::stoull(text.substr(pos));
        EXPECT_GE(cum, prev);
        prev = cum;
        ++buckets;
    }
    EXPECT_GE(buckets, 3u);  // two distinct value buckets plus +Inf
    EXPECT_EQ(prev, 5u);
}

TEST_F(ObsTest, TelemetryJsonLineParsesWithRequiredFields)
{
    auto& metrics = MetricsRegistry::global();
    metrics.incr("train.iterations", 3);
    metrics.set("queue.depth", 1.5);
    metrics.observe("step.latency", 0.25);

    stats::WindowedHistogram latency(1.0);
    latency.add(0.1, 0.02);
    latency.add(0.2, 0.04);

    const std::string line = telemetryJsonLine(
        7, 1.25, metrics, FlightRecorder::global(), &latency);
    EXPECT_TRUE(JsonParser(line).parse()) << line;
    EXPECT_NE(line.find("\"seq\": 7"), std::string::npos);
    EXPECT_NE(line.find("\"t_s\": 1.25"), std::string::npos);
    for (const char* field :
         {"\"pool\"", "\"recorder\"", "\"counters\"", "\"gauges\"",
          "\"timings\"", "\"latency\"", "\"threads\"", "\"capacity\"",
          "\"p99_s\""})
        EXPECT_NE(line.find(field), std::string::npos) << field;
    EXPECT_NE(line.find("\"train.iterations\": 3"),
              std::string::npos);

    // Without a latency source the latency block is omitted.
    const std::string bare = telemetryJsonLine(
        8, 2.5, metrics, FlightRecorder::global(), nullptr);
    EXPECT_TRUE(JsonParser(bare).parse());
    EXPECT_EQ(bare.find("\"latency\""), std::string::npos);
}

TEST_F(ObsTest, PeriodicSamplerManualPumpIsDeterministic)
{
    PeriodicSampler::Config config;
    config.interval_s = 3600.0;  // never fires on its own
    PeriodicSampler sampler(config);
    sampler.sampleOnce();
    MetricsRegistry::global().incr("pump.ticks");
    sampler.sampleOnce();
    sampler.sampleOnce();

    const auto lines = sampler.lines();
    ASSERT_EQ(lines.size(), 3u);
    double prev_t = -1.0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_TRUE(JsonParser(lines[i]).parse()) << lines[i];
        EXPECT_NE(lines[i].find("\"seq\": " + std::to_string(i)),
                  std::string::npos);
        const std::size_t pos = lines[i].find("\"t_s\": ");
        ASSERT_NE(pos, std::string::npos);
        const double t =
            std::stod(lines[i].substr(pos + std::strlen("\"t_s\": ")));
        EXPECT_GE(t, prev_t);
        prev_t = t;
    }
    // Registry traffic between pumps shows up in later lines only.
    EXPECT_EQ(lines[0].find("pump.ticks"), std::string::npos);
    EXPECT_NE(lines[2].find("\"pump.ticks\": 1"), std::string::npos);
}

TEST_F(ObsTest, PeriodicSamplerWritesJsonlFile)
{
    const std::string path = "test_obs_sampler.jsonl";
    {
        PeriodicSampler::Config config;
        config.interval_s = 3600.0;
        config.jsonl_path = path;
        PeriodicSampler sampler(config);
        sampler.sampleOnce();
        sampler.sampleOnce();
        // The destructor flushes to jsonl_path.
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t count = 0;
    while (std::getline(in, line)) {
        EXPECT_TRUE(JsonParser(line).parse()) << line;
        ++count;
    }
    EXPECT_EQ(count, 2u);
    std::remove(path.c_str());
}

TEST_F(ObsTest, PeriodicSamplerBackgroundThreadStartsAndStops)
{
    PeriodicSampler::Config config;
    config.interval_s = 0.005;
    PeriodicSampler sampler(config);
    sampler.start();
    sampler.start();  // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    sampler.stop();
    sampler.stop();  // idempotent
    const auto lines = sampler.lines();
    // stop() takes a final sample, so at least one line exists even on
    // a loaded machine.
    EXPECT_GE(lines.size(), 1u);
    for (const auto& line : lines)
        EXPECT_TRUE(JsonParser(line).parse());
}

// ---------------------------------------------------------------------
// Thread-pool metrics bridge
// ---------------------------------------------------------------------

TEST_F(ObsTest, PoolDeltaSubtractsFieldwiseAndPublishes)
{
    PoolSnapshot before;
    before.threads = 4;
    before.jobs = 10;
    before.tasks = 100;
    before.idle_ns = 1000;
    PoolSnapshot after;
    after.threads = 4;
    after.jobs = 15;
    after.tasks = 160;
    after.idle_ns = 2500;
    const PoolSnapshot delta = poolDelta(before, after);
    EXPECT_EQ(delta.threads, 4u);
    EXPECT_EQ(delta.jobs, 5u);
    EXPECT_EQ(delta.tasks, 60u);
    EXPECT_EQ(delta.idle_ns, 1500u);

    publishThreadPoolMetrics("test.pool", delta);
    auto& metrics = MetricsRegistry::global();
    EXPECT_DOUBLE_EQ(metrics.gauge("test.pool.threads"), 4.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("test.pool.jobs"), 5.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("test.pool.tasks"), 60.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("test.pool.idle_ns"), 1500.0);
}

TEST_F(ObsTest, PoolSnapshotTracksGlobalPoolMonotonically)
{
    const PoolSnapshot before = snapshotThreadPool();
    std::atomic<std::size_t> touched{0};
    util::globalThreadPool().parallelFor(
        0, 256, 16, [&touched](std::size_t lo, std::size_t hi) {
            touched.fetch_add(hi - lo, std::memory_order_relaxed);
        });
    EXPECT_EQ(touched.load(), 256u);
    const PoolSnapshot after = snapshotThreadPool();
    EXPECT_EQ(after.threads, before.threads);
    EXPECT_GE(after.jobs, before.jobs);
    EXPECT_GE(after.tasks, before.tasks);
    EXPECT_GE(after.idle_ns, before.idle_ns);

    publishThreadPoolMetrics();
    EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("pool.threads"),
                     static_cast<double>(after.threads));
}

// ---------------------------------------------------------------------
// MetricsRegistry striping
// ---------------------------------------------------------------------

TEST_F(ObsTest, ReportIsDeterministicAndSorted)
{
    auto& metrics = MetricsRegistry::global();
    // Insert in scrambled order; names hash to arbitrary stripes.
    metrics.incr("zeta.count", 2);
    metrics.observe("mid.latency", 0.5);
    metrics.set("alpha.gauge", 1.0);
    metrics.incr("alpha.count");
    metrics.set("zeta.gauge", 9.0);

    const std::string first = metrics.report();
    const std::string second = metrics.report();
    EXPECT_EQ(first, second);

    // Entries come out sorted by name within each kind.
    EXPECT_LT(first.find("alpha.count"), first.find("zeta.count"));
    EXPECT_LT(first.find("alpha.gauge"), first.find("zeta.gauge"));

    // The merged accessors see every stripe.
    EXPECT_EQ(metrics.counters().size(), 2u);
    EXPECT_EQ(metrics.gauges().size(), 2u);
    EXPECT_EQ(metrics.timings().size(), 1u);
    EXPECT_EQ(metrics.size(), 5u);
}

TEST_F(ObsTest, StripedRegistryCountsExactlyUnderContention)
{
    auto& metrics = MetricsRegistry::global();
    constexpr int kThreads = 8;
    constexpr int kIters = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&metrics, t] {
            const std::string own =
                "worker." + std::to_string(t) + ".count";
            const std::string own_gauge =
                "worker." + std::to_string(t) + ".gauge";
            for (int i = 0; i < kIters; ++i) {
                metrics.incr("shared.count");
                metrics.incr(own);
                metrics.observe("shared.latency",
                                static_cast<double>(i));
                metrics.set(own_gauge, static_cast<double>(i));
            }
        });
    }
    // A racing reader: under TSan this is the data-race proof for the
    // striped read/merge paths.
    threads.emplace_back([&metrics] {
        for (int i = 0; i < 50; ++i) {
            (void)metrics.report();
            (void)metrics.counter("shared.count");
            (void)metrics.timing("shared.latency");
            (void)metrics.size();
        }
    });
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(metrics.counter("shared.count"),
              static_cast<uint64_t>(kThreads) * kIters);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(
            metrics.counter("worker." + std::to_string(t) + ".count"),
            static_cast<uint64_t>(kIters));
        EXPECT_DOUBLE_EQ(
            metrics.gauge("worker." + std::to_string(t) + ".gauge"),
            static_cast<double>(kIters - 1));
    }
    EXPECT_EQ(metrics.timing("shared.latency").count(),
              static_cast<std::size_t>(kThreads) * kIters);
}

} // namespace
} // namespace recsim::obs
