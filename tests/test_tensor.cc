/**
 * @file
 * Unit tests for recsim::tensor: shapes, GEMM kernels against naive
 * references, elementwise ops and reductions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace recsim::tensor {
namespace {

Tensor
randomMatrix(std::size_t r, std::size_t c, uint64_t seed)
{
    util::Rng rng(seed);
    Tensor t(r, c);
    t.fillNormal(rng, 1.0f);
    return t;
}

/** Naive O(mnk) reference GEMM. */
Tensor
naiveMatmul(const Tensor& a, const Tensor& b)
{
    Tensor out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += a.at(i, k) * b.at(k, j);
            out.at(i, j) = acc;
        }
    return out;
}

TEST(Tensor, Rank1Construction)
{
    Tensor t(5);
    EXPECT_EQ(t.rank(), 1);
    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.rows(), 5u);
    EXPECT_EQ(t.cols(), 1u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, Rank2Construction)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.size(), 12u);
    t.at(2, 3) = 7.0f;
    EXPECT_EQ(t.row(2)[3], 7.0f);
}

TEST(Tensor, InitializerList)
{
    Tensor t{1.0f, 2.0f, 3.0f};
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, FillAndZero)
{
    Tensor t(2, 2);
    t.fill(3.0f);
    EXPECT_EQ(sumAll(t), 12.0);
    t.zero();
    EXPECT_EQ(sumAll(t), 0.0);
}

TEST(Tensor, FillNormalHasSpread)
{
    util::Rng rng(1);
    Tensor t(100, 100);
    t.fillNormal(rng, 2.0f);
    double sq = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i)
        sq += t.data()[i] * t.data()[i];
    EXPECT_NEAR(sq / static_cast<double>(t.size()), 4.0, 0.2);
}

TEST(Tensor, FillUniformRespectsBounds)
{
    util::Rng rng(2);
    Tensor t(1000);
    t.fillUniform(rng, -0.5f, 0.5f);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -0.5f);
        EXPECT_LT(t[i], 0.5f);
    }
}

TEST(Tensor, Reshape)
{
    Tensor t(6);
    t.reshape(2, 3);
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
}

TEST(TensorDeath, ReshapeWrongSizePanics)
{
    Tensor t(6);
    EXPECT_DEATH(t.reshape(2, 4), "reshape");
}

TEST(Tensor, ShapeString)
{
    EXPECT_EQ(Tensor(4).shapeString(), "[4]");
    EXPECT_EQ(Tensor(2, 3).shapeString(), "[2 x 3]");
}

TEST(Tensor, SameShape)
{
    EXPECT_TRUE(Tensor(2, 3).sameShape(Tensor(2, 3)));
    EXPECT_FALSE(Tensor(2, 3).sameShape(Tensor(3, 2)));
    EXPECT_FALSE(Tensor(6).sameShape(Tensor(2, 3)));
}

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulShapes, MatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const Tensor a = randomMatrix(m, k, 10 + m);
    const Tensor b = randomMatrix(k, n, 20 + n);
    Tensor out;
    matmul(a, b, out);
    EXPECT_LT(maxAbsDiff(out, naiveMatmul(a, b)), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(7, 13, 5),
                      std::make_tuple(32, 64, 17)));

// Shapes that straddle the cache-block edges of the blocked kernel
// (kKc = 128 rows of B, kNc = 512 output columns) plus odd primes, so
// every partial-block path is exercised against the naive reference.
INSTANTIATE_TEST_SUITE_P(
    BlockEdges, MatmulShapes,
    ::testing::Values(std::make_tuple(33, 17, 29),
                      std::make_tuple(3, 127, 31),
                      std::make_tuple(5, 128, 33),
                      std::make_tuple(7, 129, 35),
                      std::make_tuple(2, 130, 513),
                      std::make_tuple(1, 257, 511),
                      std::make_tuple(65, 256, 1)));

TEST(Matmul, TransVariantsMatchNaiveAtBlockEdgeShapes)
{
    // [k, m] and [n, k] operands at sizes crossing the kKc boundary.
    const std::size_t m = 33, k = 130, n = 29;
    const Tensor a_t = randomMatrix(k, m, 90);  // transA operand
    const Tensor b = randomMatrix(k, n, 91);
    Tensor at(m, k);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < m; ++j)
            at.at(j, i) = a_t.at(i, j);
    Tensor got;
    matmulTransA(a_t, b, got);
    EXPECT_LT(maxAbsDiff(got, naiveMatmul(at, b)), 1e-3);

    const Tensor a = randomMatrix(m, k, 92);
    const Tensor b_t = randomMatrix(n, k, 93);  // transB operand
    Tensor bt(k, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < k; ++j)
            bt.at(j, i) = b_t.at(i, j);
    matmulTransB(a, b_t, got);
    EXPECT_LT(maxAbsDiff(got, naiveMatmul(a, bt)), 1e-3);
}

TEST(Matmul, TransAMatchesExplicitTranspose)
{
    const Tensor a = randomMatrix(6, 4, 33);  // [k=6, m=4]
    const Tensor b = randomMatrix(6, 5, 34);  // [k=6, n=5]
    Tensor at(4, 6);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            at.at(j, i) = a.at(i, j);
    Tensor expected, got;
    matmul(at, b, expected);
    matmulTransA(a, b, got);
    EXPECT_LT(maxAbsDiff(got, expected), 1e-4);
}

TEST(Matmul, TransBMatchesExplicitTranspose)
{
    const Tensor a = randomMatrix(4, 6, 35);  // [m, k]
    const Tensor b = randomMatrix(5, 6, 36);  // [n, k]
    Tensor bt(6, 5);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            bt.at(j, i) = b.at(i, j);
    Tensor expected, got;
    matmul(a, bt, expected);
    matmulTransB(a, b, got);
    EXPECT_LT(maxAbsDiff(got, expected), 1e-4);
}

TEST(MatmulDeath, ShapeMismatchPanics)
{
    Tensor a(2, 3), b(4, 5), out;
    EXPECT_DEATH(matmul(a, b, out), "matmul");
}

TEST(Matmul, ReusesOutputBuffer)
{
    const Tensor a = randomMatrix(3, 3, 40);
    const Tensor b = randomMatrix(3, 3, 41);
    Tensor out;
    matmul(a, b, out);
    const float* ptr = out.data();
    matmul(a, b, out);
    EXPECT_EQ(out.data(), ptr);
    EXPECT_LT(maxAbsDiff(out, naiveMatmul(a, b)), 1e-4);
}

TEST(Ops, AddBiasRows)
{
    Tensor x(2, 3);
    x.fill(1.0f);
    Tensor bias{1.0f, 2.0f, 3.0f};
    addBiasRows(x, bias);
    EXPECT_EQ(x.at(0, 0), 2.0f);
    EXPECT_EQ(x.at(1, 2), 4.0f);
}

TEST(Ops, SumRows)
{
    Tensor x(2, 2);
    x.at(0, 0) = 1.0f;
    x.at(0, 1) = 2.0f;
    x.at(1, 0) = 3.0f;
    x.at(1, 1) = 4.0f;
    Tensor out;
    sumRows(x, out);
    EXPECT_EQ(out[0], 4.0f);
    EXPECT_EQ(out[1], 6.0f);
}

TEST(Ops, Axpy)
{
    Tensor x{1.0f, 2.0f};
    Tensor y{10.0f, 20.0f};
    axpy(2.0f, x, y);
    EXPECT_EQ(y[0], 12.0f);
    EXPECT_EQ(y[1], 24.0f);
}

TEST(Ops, Scale)
{
    Tensor x{2.0f, -4.0f};
    scale(x, 0.5f);
    EXPECT_EQ(x[0], 1.0f);
    EXPECT_EQ(x[1], -2.0f);
}

TEST(Ops, ReluForwardAndBackward)
{
    Tensor x{-1.0f, 0.0f, 2.0f};
    Tensor y = x;
    reluInPlace(y);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 2.0f);

    Tensor dy{5.0f, 6.0f, 7.0f};
    Tensor dx;
    reluBackward(y, dy, dx);
    EXPECT_EQ(dx[0], 0.0f);
    EXPECT_EQ(dx[1], 0.0f);
    EXPECT_EQ(dx[2], 7.0f);
}

TEST(Ops, ReluBackwardInPlaceAlias)
{
    Tensor y{0.0f, 3.0f};
    Tensor dy{4.0f, 5.0f};
    reluBackward(y, dy, dy);
    EXPECT_EQ(dy[0], 0.0f);
    EXPECT_EQ(dy[1], 5.0f);
}

TEST(Ops, SigmoidValuesAndStability)
{
    Tensor x{0.0f, 100.0f, -100.0f};
    sigmoidInPlace(x);
    EXPECT_NEAR(x[0], 0.5f, 1e-6);
    EXPECT_NEAR(x[1], 1.0f, 1e-6);
    EXPECT_NEAR(x[2], 0.0f, 1e-6);
    EXPECT_TRUE(std::isfinite(x[1]));
    EXPECT_TRUE(std::isfinite(x[2]));
}

TEST(Ops, DotAndNorm)
{
    Tensor a{3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
    EXPECT_DOUBLE_EQ(l2Norm(a), 5.0);
}

TEST(Ops, MaxAbsDiff)
{
    Tensor a{1.0f, 2.0f};
    Tensor b{1.5f, 1.0f};
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 1.0);
}

TEST(Ops, ClipL2Norm)
{
    Tensor x{3.0f, 4.0f};
    clipL2Norm(x, 2.5);
    EXPECT_NEAR(l2Norm(x), 2.5, 1e-6);
    Tensor y{0.3f, 0.4f};
    clipL2Norm(y, 2.5);
    EXPECT_NEAR(l2Norm(y), 0.5, 1e-6);
}

// ---- SIMD microkernel contracts ------------------------------------

bool
bitwiseEqualTensors(const Tensor& a, const Tensor& b)
{
    return a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/**
 * The accumulation-order contract of ops.h, executed literally: per
 * output element the k products fold in increasing p, each as one
 * std::fma, starting from zero. Every matmul code path (scalar tiles,
 * AVX2 register blocks, any cache blocking, any thread count) must
 * reproduce this bit for bit.
 */
Tensor
contractMatmul(const Tensor& a, const Tensor& b)
{
    Tensor out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            float acc = 0.0f;
            for (std::size_t p = 0; p < a.cols(); ++p)
                acc = std::fma(a.at(i, p), b.at(p, j), acc);
            out.at(i, j) = acc;
        }
    return out;
}

TEST(Simd, FastExpDenseSweepWithinRelTol)
{
    // Dense sweep over the whole un-clamped domain: the kernel promises
    // <= 1e-6 relative error against libm everywhere it is used
    // (sigmoid). 350k points at 0.5e-3 spacing.
    double max_rel = 0.0;
    for (double x = -87.0; x <= 88.0; x += 0.5e-3) {
        const auto xf = static_cast<float>(x);
        const double want = std::exp(static_cast<double>(xf));
        const double got = simd::fastExp(xf);
        max_rel = std::max(max_rel, std::abs(got - want) / want);
    }
    EXPECT_LE(max_rel, 1e-6);
}

TEST(Simd, FastExpClampsAndEdgeValues)
{
    EXPECT_EQ(simd::fastExp(0.0f), 1.0f);
    // Far outside the clamp range: finite, monotone-consistent limits.
    EXPECT_GT(simd::fastExp(1000.0f), 1e38f);
    EXPECT_TRUE(std::isfinite(simd::fastExp(1000.0f)));
    EXPECT_LT(simd::fastExp(-1000.0f), 1e-37f);
    EXPECT_GE(simd::fastExp(-1000.0f), 0.0f);
    // Scalar reference path and dispatched path agree bitwise.
    for (float x : {-80.0f, -1.5f, 0.0f, 0.7f, 42.0f}) {
        EXPECT_EQ(simd::fastExp(x), simd::fastExpScalar(x));
    }
}

TEST(Simd, SigmoidVectorLaneMatchesScalarTail)
{
    // 9 copies of one value: element 0 runs in the 8-wide vector body,
    // element 8 in the scalar tail. The dispatch contract requires the
    // two paths to be bit-identical for non-NaN inputs.
    for (float x : {-30.0f, -2.5f, -0.1f, 0.0f, 0.3f, 4.0f, 50.0f}) {
        float buf[9];
        for (float& v : buf)
            v = x;
        simd::sigmoidSpan(buf, 9);
        EXPECT_EQ(std::memcmp(&buf[0], &buf[8], sizeof(float)), 0)
            << "vector lane and scalar tail disagree at x = " << x;
    }
}

TEST(Matmul, AccumulationOrderContractBitwise)
{
    // Odd sizes: exercise the 6-row blocks, the 16/8-wide column tiles,
    // the scalar tails and a k crossing the 128-deep panel boundary.
    const Tensor a = randomMatrix(13, 131, 7);
    const Tensor b = randomMatrix(131, 37, 8);
    const Tensor want = contractMatmul(a, b);
    Tensor got;
    matmul(a, b, got);
    EXPECT_TRUE(bitwiseEqualTensors(got, want));
}

TEST(Matmul, TransVariantsHonorAccumulationContractBitwise)
{
    const Tensor a = randomMatrix(13, 131, 9);
    const Tensor b = randomMatrix(131, 37, 10);

    // A^T path: matmulTransA(a', b) with a' = a^T must equal the
    // contract fold of (a, b).
    Tensor at(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            at.at(j, i) = a.at(i, j);
    Tensor got;
    matmulTransA(at, b, got);
    EXPECT_TRUE(bitwiseEqualTensors(got, contractMatmul(a, b)));

    // B^T path likewise.
    Tensor bt(b.cols(), b.rows());
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            bt.at(j, i) = b.at(i, j);
    matmulTransB(a, bt, got);
    EXPECT_TRUE(bitwiseEqualTensors(got, contractMatmul(a, b)));
}

TEST(Matmul, FusedBiasActBitwiseEqualsUnfusedPipeline)
{
    const Tensor a = randomMatrix(9, 131, 11);
    const Tensor b = randomMatrix(131, 33, 12);
    util::Rng rng(13);
    Tensor bias(33);
    bias.fillNormal(rng, 1.0f);

    for (bool relu : {false, true}) {
        Tensor unfused;
        matmul(a, b, unfused);
        addBiasRows(unfused, bias);
        if (relu)
            reluInPlace(unfused);
        Tensor fused;
        matmulBiasAct(a, b, bias, relu, fused);
        EXPECT_TRUE(bitwiseEqualTensors(fused, unfused))
            << "relu = " << relu;
    }
}

TEST(Ops, SumRowsBitwiseMatchesSerialRowOrderFold)
{
    const Tensor x = randomMatrix(37, 23, 14);
    Tensor want(x.cols());
    for (std::size_t j = 0; j < x.cols(); ++j) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < x.rows(); ++i)
            acc += x.at(i, j);
        want[j] = acc;
    }
    Tensor got;
    sumRows(x, got);
    EXPECT_TRUE(bitwiseEqualTensors(got, want));
}

TEST(Ops, SumRowsAccumulatesInRowOrder)
{
    // (1e8 + 1) - 1e8 == 0 in float because 1e8 + 1 rounds back to
    // 1e8; any other accumulation order gives 1. Pins the top-to-bottom
    // fold the vectorized column tiles must preserve.
    Tensor x(3, 1);
    x.at(0, 0) = 1e8f;
    x.at(1, 0) = 1.0f;
    x.at(2, 0) = -1e8f;
    Tensor out;
    sumRows(x, out);
    EXPECT_EQ(out[0], 0.0f);
}

// ---- Fused backward kernels ----------------------------------------

TEST(Matmul, TransBMaskBitwiseEqualsUnfusedMaskPipeline)
{
    // dx = (dy W) * 1[y > 0]: the mask applied in the GEMM store must
    // match matmulTransB followed by reluBackward bit for bit. Odd
    // shapes cross the register-tile and cache-panel edges.
    const Tensor dy = randomMatrix(13, 131, 31);
    const Tensor w = randomMatrix(37, 131, 32);
    Tensor y = randomMatrix(13, 37, 33);
    // Edge bits the predicate must treat exactly like reluBackward:
    // -0.0 and NaN both fail y > 0 and zero the element.
    y.at(0, 0) = -0.0f;
    y.at(1, 5) = std::numeric_limits<float>::quiet_NaN();
    y.at(2, 36) = 0.0f;

    Tensor unfused;
    matmulTransB(dy, w, unfused);
    reluBackward(y, unfused, unfused);
    Tensor fused;
    matmulTransBMask(dy, w, &y, fused);
    EXPECT_TRUE(bitwiseEqualTensors(fused, unfused));
    EXPECT_EQ(fused.at(0, 0), 0.0f);
    EXPECT_EQ(fused.at(1, 5), 0.0f);
    EXPECT_EQ(fused.at(2, 36), 0.0f);
}

TEST(Matmul, TransABiasGradBitwiseEqualsUnfusedPair)
{
    // dw = x^T dy with db = sumRows(dy) riding the same sweep: both
    // outputs must match the standalone kernels bit for bit (the
    // fused column sums fold rows in the same increasing order).
    const Tensor x = randomMatrix(131, 13, 34);
    const Tensor dy = randomMatrix(131, 37, 35);

    Tensor dw_ref, db_ref;
    matmulTransA(x, dy, dw_ref);
    sumRows(dy, db_ref);
    Tensor dw, db;
    matmulTransABiasGrad(x, dy, dw, db);
    EXPECT_TRUE(bitwiseEqualTensors(dw, dw_ref));
    EXPECT_TRUE(bitwiseEqualTensors(db, db_ref));
}

TEST(Matmul, TransBSegmentedBitwiseEqualsColumnSplit)
{
    // Splitting the output columns across destination tensors must
    // not disturb any element's fma chain; a zero-bias segment adds
    // +0.0f in the epilogue, which only normalizes -0.0 to +0.0 —
    // exactly what the unfused zero-then-accumulate scatter produces.
    const Tensor a = randomMatrix(9, 67, 36);
    const Tensor b = randomMatrix(41, 67, 37);
    Tensor full;
    matmulTransB(a, b, full);

    Tensor s0, s1, s2;
    std::vector<GemmOutSegment> segs = {
        {&s0, 16, /*zero_bias=*/true}, {&s1, 24, false}, {&s2, 1, false}};
    matmulTransBSegmented(a, b, segs);

    for (std::size_t i = 0; i < full.rows(); ++i)
        for (std::size_t j = 0; j < full.cols(); ++j) {
            const float want = j < 16 ? full.at(i, j) + 0.0f
                : full.at(i, j);
            const float got = j < 16 ? s0.at(i, j)
                : j < 40 ? s1.at(i, j - 16) : s2.at(i, j - 40);
            EXPECT_EQ(std::memcmp(&got, &want, sizeof(float)), 0)
                << "element (" << i << ", " << j << ")";
        }
}

TEST(Simd, ReluMaskSpanVectorLaneMatchesScalarTail)
{
    // 9 lanes: one full 8-wide vector plus a scalar tail. Same y and
    // dy in every lane, so lane 0 (vector) must equal lane 8 (tail).
    const float ys[] = {-3.0f, -0.0f, 0.0f, 0.5f,
                        std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity()};
    for (float yv : ys) {
        float y[9], dy[9], dx[9];
        for (int i = 0; i < 9; ++i) {
            y[i] = yv;
            dy[i] = 2.5f;
        }
        simd::reluMaskSpan(y, dy, dx, 9);
        EXPECT_EQ(std::memcmp(&dx[0], &dx[8], sizeof(float)), 0)
            << "vector lane and scalar tail disagree at y = " << yv;
        const float want = yv > 0.0f ? 2.5f : 0.0f;
        EXPECT_EQ(std::memcmp(&dx[0], &want, sizeof(float)), 0)
            << "wrong mask result at y = " << yv;
    }
}

TEST(Simd, ReluMaskSpanInPlaceAlias)
{
    // dy and dx may alias (reluBackward's in-place use).
    float y[11], g[11];
    for (int i = 0; i < 11; ++i) {
        y[i] = i % 2 == 0 ? 1.0f : -1.0f;
        g[i] = static_cast<float>(i) + 0.5f;
    }
    simd::reluMaskSpan(y, g, g, 11);
    for (int i = 0; i < 11; ++i)
        EXPECT_EQ(g[i],
                  i % 2 == 0 ? static_cast<float>(i) + 0.5f : 0.0f);
}

} // namespace
} // namespace recsim::tensor
