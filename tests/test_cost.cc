/**
 * @file
 * Tests for recsim::cost: the cache model, system-config accounting and
 * the iteration cost model. The property tests here pin the paper's
 * qualitative results: monotonicities of Figs 10-13, the Fig 14
 * placement orderings, and the Table III relative-throughput bands.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cache_model.h"
#include "cost/iteration_model.h"
#include "cost/system_config.h"
#include "model/config.h"

namespace recsim::cost {
namespace {

using placement::EmbeddingPlacement;

IterationEstimate
estimate(const model::DlrmConfig& m, const SystemConfig& s)
{
    return IterationModel(m, s).estimate();
}

TEST(CacheModel, CacheResidentGathersAreFast)
{
    EXPECT_DOUBLE_EQ(gatherEfficiency(1.0e6, 6.0e6, 0.3, 0.9), 0.9);
}

TEST(CacheModel, LargeWorkingSetsDecayToRandom)
{
    const double eff = gatherEfficiency(600.0e9, 6.0e6, 0.3, 0.9);
    EXPECT_NEAR(eff, 0.3, 0.01);
}

TEST(CacheModel, MonotoneInWorkingSetSize)
{
    double prev = 1.0;
    for (double bytes = 1e6; bytes < 1e12; bytes *= 4.0) {
        const double eff = gatherEfficiency(bytes, 6.0e6, 0.3, 0.9);
        EXPECT_LE(eff, prev + 1e-12);
        prev = eff;
    }
}

TEST(SystemConfig, GlobalBatchGpuCountsAllGpus)
{
    const auto sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    EXPECT_EQ(sys.globalBatch(), 1600u * 8);
}

TEST(SystemConfig, GlobalBatchCpuCountsTrainersAndWorkers)
{
    const auto sys = SystemConfig::cpuSetup(6, 8, 2, 200, 2);
    EXPECT_EQ(sys.globalBatch(), 200u * 6 * 2);
}

TEST(SystemConfig, PowerAccountsForServers)
{
    const double cpu_server =
        hw::Platform::dualSocketCpu().power_watts;
    const auto cpu = SystemConfig::cpuSetup(6, 8, 2);
    EXPECT_NEAR(cpu.totalPowerWatts(), (6 + 8 + 2) * cpu_server, 1e-6);

    const auto gpu = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    EXPECT_NEAR(gpu.totalPowerWatts(), 7.3 * cpu_server, 1e-6);

    const auto remote = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    EXPECT_NEAR(remote.totalPowerWatts(),
                7.3 * cpu_server + 8 * cpu_server, 1e-6);
}

TEST(SystemConfig, SummaryMentionsPlacement)
{
    const auto sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::HostMemory, 800);
    EXPECT_NE(sys.summary().find("host_memory"), std::string::npos);
}

TEST(IterationModel, InfeasiblePlacementReportsReason)
{
    const auto est = estimate(model::DlrmConfig::m3Prod(),
                              SystemConfig::bigBasinSetup(
                                  EmbeddingPlacement::GpuMemory, 800));
    EXPECT_FALSE(est.feasible);
    EXPECT_FALSE(est.infeasible_reason.empty());
    EXPECT_EQ(est.throughput, 0.0);
}

TEST(IterationModel, UtilizationsWithinUnitInterval)
{
    for (const auto& est :
         {estimate(model::DlrmConfig::m1Prod(),
                   SystemConfig::cpuSetup(6, 8, 2)),
          estimate(model::DlrmConfig::m1Prod(),
                   SystemConfig::bigBasinSetup(
                       EmbeddingPlacement::GpuMemory, 1600))}) {
        for (const auto& [name, util] : est.util.asList()) {
            EXPECT_GE(util, 0.0) << name;
            EXPECT_LE(util, 1.0) << name;
        }
    }
}

TEST(IterationModel, BreakdownSumsNearIterationTime)
{
    const auto est = estimate(model::DlrmConfig::m1Prod(),
                              SystemConfig::bigBasinSetup(
                                  EmbeddingPlacement::GpuMemory, 1600));
    double total = 0.0;
    for (const auto& phase : est.breakdown)
        total += phase.seconds;
    EXPECT_NEAR(total, est.iteration_seconds,
                est.iteration_seconds * 0.05);
}

TEST(IterationModel, ThroughputPositiveForFeasibleSetups)
{
    const auto est = estimate(model::DlrmConfig::m2Prod(),
                              SystemConfig::cpuSetup(20, 16, 4));
    EXPECT_TRUE(est.feasible);
    EXPECT_GT(est.throughput, 0.0);
    EXPECT_GT(est.power_watts, 0.0);
    EXPECT_GT(est.perfPerWatt(), 0.0);
    EXPECT_FALSE(est.bottleneck.empty());
}

// ---- Fig 10: feature-count monotonicity ---------------------------

TEST(Fig10, ThroughputDecreasesWithDenseFeatures)
{
    double prev_cpu = 1e18, prev_gpu = 1e18;
    for (std::size_t dense : {64, 256, 1024, 4096}) {
        const auto m = model::DlrmConfig::testSuite(dense, 32, 100000);
        const double cpu =
            estimate(m, SystemConfig::cpuSetup(1, 1, 1, 200, 1))
                .throughput;
        const double gpu =
            estimate(m, SystemConfig::bigBasinSetup(
                            EmbeddingPlacement::GpuMemory, 1600))
                .throughput;
        EXPECT_LT(cpu, prev_cpu);
        EXPECT_LT(gpu, prev_gpu);
        prev_cpu = cpu;
        prev_gpu = gpu;
    }
}

TEST(Fig10, ThroughputDecreasesWithSparseFeatures)
{
    double prev_cpu = 1e18, prev_gpu = 1e18;
    for (std::size_t sparse : {4, 16, 64, 128}) {
        const auto m = model::DlrmConfig::testSuite(256, sparse, 100000);
        const double cpu =
            estimate(m, SystemConfig::cpuSetup(1, 1, 1, 200, 1))
                .throughput;
        const double gpu =
            estimate(m, SystemConfig::bigBasinSetup(
                            EmbeddingPlacement::GpuMemory, 1600))
                .throughput;
        EXPECT_LT(cpu, prev_cpu);
        EXPECT_LT(gpu, prev_gpu);
        prev_cpu = cpu;
        prev_gpu = gpu;
    }
}

TEST(Fig10, GpuThroughputHigherThanCpuEverywhere)
{
    for (std::size_t dense : {64, 1024, 4096}) {
        for (std::size_t sparse : {4, 32, 128}) {
            const auto m =
                model::DlrmConfig::testSuite(dense, sparse, 100000);
            const double cpu =
                estimate(m, SystemConfig::cpuSetup(1, 1, 1, 200, 1))
                    .throughput;
            const double gpu =
                estimate(m, SystemConfig::bigBasinSetup(
                                EmbeddingPlacement::GpuMemory, 1600))
                    .throughput;
            EXPECT_GT(gpu, cpu)
                << "dense " << dense << " sparse " << sparse;
        }
    }
}

// ---- Fig 11: batch-size scaling ------------------------------------

TEST(Fig11, GpuThroughputRisesThenSaturates)
{
    const auto m = model::DlrmConfig::testSuite(256, 32, 100000);
    std::vector<double> thr;
    for (std::size_t batch : {100, 400, 1600, 6400, 12800}) {
        thr.push_back(estimate(m, SystemConfig::bigBasinSetup(
                                      EmbeddingPlacement::GpuMemory,
                                      batch))
                          .throughput);
    }
    for (std::size_t i = 1; i < thr.size(); ++i)
        EXPECT_GT(thr[i], thr[i - 1]);
    // Saturation: the last doubling gains far less than the first.
    const double first_gain = thr[1] / thr[0];
    const double last_gain = thr.back() / thr[thr.size() - 2];
    EXPECT_GT(first_gain, 1.5);
    EXPECT_LT(last_gain, 1.15);
}

TEST(Fig11, CpuHasInteriorOptimalBatch)
{
    const auto m = model::DlrmConfig::testSuite(256, 32, 100000);
    std::vector<double> thr;
    const std::vector<std::size_t> batches = {50, 200, 800, 3200, 12800};
    for (std::size_t batch : batches) {
        thr.push_back(estimate(m, SystemConfig::cpuSetup(1, 1, 1, batch,
                                                         1))
                          .throughput);
    }
    // Rises from tiny batches, then higher batches become detrimental.
    EXPECT_GT(thr[1], thr[0]);
    EXPECT_LT(thr.back(), *std::max_element(thr.begin(), thr.end()));
}

// ---- Fig 12: hash-size scaling -------------------------------------

TEST(Fig12, CpuFlatUntilCapacityWall)
{
    const auto sys = SystemConfig::cpuSetup(1, 1, 1, 200, 1);
    const double base = estimate(
        model::DlrmConfig::testSuite(256, 32, 10000), sys).throughput;
    for (uint64_t hash : {100000ULL, 1000000ULL, 10000000ULL}) {
        const double thr = estimate(
            model::DlrmConfig::testSuite(256, 32, hash), sys).throughput;
        EXPECT_NEAR(thr, base, base * 0.1) << hash;
    }
    // 100M x 32 tables x 256 B = 819 GB: beyond one 256 GB PS.
    const auto walled = estimate(
        model::DlrmConfig::testSuite(256, 32, 100000000), sys);
    EXPECT_FALSE(walled.feasible);
}

TEST(Fig12, GpuThroughputDropsWithHashSize)
{
    const auto sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    const double small = estimate(
        model::DlrmConfig::testSuite(256, 32, 10000), sys).throughput;
    const double large = estimate(
        model::DlrmConfig::testSuite(256, 32, 1000000), sys).throughput;
    EXPECT_LT(large, small);
    // And the capacity cliff: 20M rows x 32 tables no longer fit the
    // eight 16 GB GPUs.
    const auto walled = estimate(
        model::DlrmConfig::testSuite(256, 32, 20000000), sys);
    EXPECT_FALSE(walled.feasible);
}

// ---- Fig 13: MLP-dimension scaling ---------------------------------

TEST(Fig13, CpuDropsFasterThanGpuForLargeMlps)
{
    const auto small = model::DlrmConfig::testSuite(256, 32, 100000,
                                                    64, 2);
    const auto large = model::DlrmConfig::testSuite(256, 32, 100000,
                                                    2048, 4);
    const auto cpu_sys = SystemConfig::cpuSetup(1, 1, 1, 200, 1);
    const auto gpu_sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    const double cpu_drop =
        estimate(small, cpu_sys).throughput /
        estimate(large, cpu_sys).throughput;
    const double gpu_drop =
        estimate(small, gpu_sys).throughput /
        estimate(large, gpu_sys).throughput;
    EXPECT_GT(cpu_drop, gpu_drop);
    EXPECT_GT(cpu_drop, 4.0);
}

TEST(Fig13, ThroughputFlatForSmallMlps)
{
    const auto cpu_sys = SystemConfig::cpuSetup(1, 1, 1, 200, 1);
    const double w64 = estimate(
        model::DlrmConfig::testSuite(256, 32, 100000, 64, 3),
        cpu_sys).throughput;
    const double w256 = estimate(
        model::DlrmConfig::testSuite(256, 32, 100000, 256, 3),
        cpu_sys).throughput;
    // "We do not see the throughput decrease significantly until the
    // MLP dimension grows larger than 256^3."
    EXPECT_GT(w256 / w64, 0.85);
}

// ---- Fig 14: placement orderings ------------------------------------

TEST(Fig14, BigBasinBestPlacementIsGpuMemory)
{
    const auto m2 = model::DlrmConfig::m2Prod();
    const double gpu_mem = estimate(
        m2, SystemConfig::bigBasinSetup(EmbeddingPlacement::GpuMemory,
                                        3200)).throughput;
    const double host = estimate(
        m2, SystemConfig::bigBasinSetup(EmbeddingPlacement::HostMemory,
                                        3200)).throughput;
    const double remote = estimate(
        m2, SystemConfig::bigBasinSetup(EmbeddingPlacement::RemotePs,
                                        3200, 8)).throughput;
    EXPECT_GT(gpu_mem, host);
    EXPECT_GT(host, remote);
    // "Throughput was four times lower" for host placement.
    EXPECT_GT(gpu_mem / host, 2.0);
    EXPECT_LT(gpu_mem / host, 8.0);
}

TEST(Fig14, ZionBestPlacementIsHostMemory)
{
    const auto m2 = model::DlrmConfig::m2Prod();
    const double gpu_mem = estimate(
        m2, SystemConfig::zionSetup(EmbeddingPlacement::GpuMemory,
                                    3200)).throughput;
    const double host = estimate(
        m2, SystemConfig::zionSetup(EmbeddingPlacement::HostMemory,
                                    3200)).throughput;
    const double remote = estimate(
        m2, SystemConfig::zionSetup(EmbeddingPlacement::RemotePs,
                                    3200, 8)).throughput;
    EXPECT_GT(host, gpu_mem);
    EXPECT_GT(host, remote);
}

TEST(Fig14, ZionRemoteSlightlyBetterThanBigBasinRemote)
{
    const auto m2 = model::DlrmConfig::m2Prod();
    const double bb = estimate(
        m2, SystemConfig::bigBasinSetup(EmbeddingPlacement::RemotePs,
                                        3200, 8)).throughput;
    const double zion = estimate(
        m2, SystemConfig::zionSetup(EmbeddingPlacement::RemotePs,
                                    3200, 8)).throughput;
    EXPECT_GT(zion, bb);
    EXPECT_LT(zion / bb, 4.0);
}

// ---- Table III: relative throughput bands ---------------------------

TEST(TableIII, M1GpuWinsAbout2x)
{
    const auto m1 = model::DlrmConfig::m1Prod();
    const double cpu = estimate(
        m1, SystemConfig::cpuSetup(6, 8, 2, 200, 1)).throughput;
    const double gpu = estimate(
        m1, SystemConfig::bigBasinSetup(EmbeddingPlacement::GpuMemory,
                                        1600)).throughput;
    const double ratio = gpu / cpu;
    // Paper: 2.25x.
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 3.5);
}

TEST(TableIII, M2GpuCloseToCpu)
{
    const auto m2 = model::DlrmConfig::m2Prod();
    const double cpu = estimate(
        m2, SystemConfig::cpuSetup(20, 16, 4, 200, 1)).throughput;
    const double gpu = estimate(
        m2, SystemConfig::bigBasinSetup(EmbeddingPlacement::GpuMemory,
                                        3200)).throughput;
    const double ratio = gpu / cpu;
    // Paper: 0.85x ("close performance").
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 1.3);
}

TEST(TableIII, M3GpuLosesToCpu)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    const double cpu = estimate(
        m3, SystemConfig::cpuSetup(8, 8, 2, 200, 4)).throughput;
    auto gpu_sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    gpu_sys.hogwild_threads = 4;
    const double gpu = estimate(m3, gpu_sys).throughput;
    const double ratio = gpu / cpu;
    // Paper: 0.67x.
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 0.95);
}

TEST(TableIII, PowerEfficiencyOrderingHolds)
{
    // eff(M1) > eff(M3); M3's GPU setup is less power-efficient than
    // its CPU setup (paper: 4.3x / 2.8x / 0.43x).
    const auto m1 = model::DlrmConfig::m1Prod();
    const auto m3 = model::DlrmConfig::m3Prod();

    const auto m1_cpu = estimate(
        m1, SystemConfig::cpuSetup(6, 8, 2, 200, 1));
    const auto m1_gpu = estimate(
        m1, SystemConfig::bigBasinSetup(EmbeddingPlacement::GpuMemory,
                                        1600));
    const double m1_eff = m1_gpu.perfPerWatt() / m1_cpu.perfPerWatt();

    const auto m3_cpu = estimate(
        m3, SystemConfig::cpuSetup(8, 8, 2, 200, 4));
    auto m3_sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    m3_sys.hogwild_threads = 4;
    const auto m3_gpu = estimate(m3, m3_sys);
    const double m3_eff = m3_gpu.perfPerWatt() / m3_cpu.perfPerWatt();

    EXPECT_GT(m1_eff, 2.0);
    EXPECT_LT(m3_eff, 1.0);
    EXPECT_GT(m1_eff, m3_eff);
}

// ---- Misc model behaviours ------------------------------------------

TEST(IterationModel, HogwildOverlapHelpsRemotePlacement)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    auto sys = SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    sys.hogwild_threads = 1;
    const double serial = estimate(m3, sys).throughput;
    sys.hogwild_threads = 4;
    const double overlapped = estimate(m3, sys).throughput;
    EXPECT_GT(overlapped, serial);
}

TEST(IterationModel, MoreTrainersScaleUntilPsBound)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    const double t4 = estimate(
        m3, SystemConfig::cpuSetup(4, 8, 2, 200, 4)).throughput;
    const double t8 = estimate(
        m3, SystemConfig::cpuSetup(8, 8, 2, 200, 4)).throughput;
    const double t32 = estimate(
        m3, SystemConfig::cpuSetup(32, 8, 2, 200, 4)).throughput;
    EXPECT_GE(t8, t4);
    // Eventually the sparse PS caps aggregate throughput.
    EXPECT_LT(t32, 4.0 * t8);
    const auto est32 = estimate(
        m3, SystemConfig::cpuSetup(32, 8, 2, 200, 4));
    EXPECT_EQ(est32.bottleneck, "sparse_ps");
}

TEST(IterationModel, FusedStepGraphNeverSlowerAndWinsWithDispatchCost)
{
    const auto m = model::DlrmConfig::m1Prod();
    const auto sys = SystemConfig::cpuSetup(4, 8, 2, 200, 2);

    // With free dispatch the fusion win is the epilogue traffic alone,
    // so fused must be at least as fast and never changes feasibility.
    CostParams fused_params;
    fused_params.fuse_step_graph = true;
    const auto plain = IterationModel(m, sys).estimate();
    const auto fused = IterationModel(m, sys, fused_params).estimate();
    ASSERT_TRUE(plain.feasible);
    ASSERT_TRUE(fused.feasible);
    EXPECT_LE(fused.iteration_seconds, plain.iteration_seconds);

    // A nonzero per-table dispatch cost makes lookup grouping a strict
    // win: the fused graph has one EmbeddingLookup node per device
    // instead of one per table.
    CostParams dispatch;
    dispatch.cpu_per_table_dispatch = 5.0e-6;
    auto fused_dispatch = dispatch;
    fused_dispatch.fuse_step_graph = true;
    const auto plain_d = IterationModel(m, sys, dispatch).estimate();
    const auto fused_d =
        IterationModel(m, sys, fused_dispatch).estimate();
    EXPECT_LT(fused_d.iteration_seconds, plain_d.iteration_seconds);
    EXPECT_GT(fused_d.throughput, plain_d.throughput);
}

TEST(IterationModel, EasgdSyncPeriodReducesDensePsLoad)
{
    const auto m2 = model::DlrmConfig::m2Prod();
    auto sys = SystemConfig::cpuSetup(20, 16, 1, 200, 1);
    sys.easgd_sync_period = 1;
    const auto frequent = estimate(m2, sys);
    sys.easgd_sync_period = 64;
    const auto rare = estimate(m2, sys);
    EXPECT_GE(rare.throughput, frequent.throughput);
    EXPECT_LE(rare.util.dense_ps_network,
              frequent.util.dense_ps_network);
}

} // namespace
} // namespace recsim::cost
