/**
 * @file
 * The serving test wall: property tests for the seeded load generator
 * (bit-reproducibility across runs and thread-pool sizes, Poisson
 * inter-arrival mean, diurnal modulation integrating back to the mean
 * rate), invariant tests for the dynamic batching scheduler (deadline,
 * caps, FIFO, starvation freedom), a replay smoke test over the real
 * inference engine, and a TSan-matrix test of the thread-safe latency
 * recorder the serving path records completions through.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/load_gen.h"
#include "serve/scheduler.h"
#include "stats/sample_set.h"
#include "util/thread_pool.h"

namespace recsim::serve {
namespace {

LoadGenConfig
steadyConfig(double qps, uint64_t seed = 11)
{
    LoadGenConfig cfg;
    cfg.seed = seed;
    cfg.mean_qps = qps;
    cfg.diurnal_amplitude = 0.0;
    cfg.sla_s = 0.05;
    return cfg;
}

Query
makeQuery(uint64_t id, double arrival, std::size_t candidates,
          double deadline)
{
    Query q;
    q.id = id;
    q.arrival_s = arrival;
    q.candidates = candidates;
    q.deadline_s = deadline;
    return q;
}

bool
sameQuery(const Query& a, const Query& b)
{
    return a.id == b.id && a.candidates == b.candidates &&
        std::memcmp(&a.arrival_s, &b.arrival_s, sizeof(double)) == 0 &&
        std::memcmp(&a.deadline_s, &b.deadline_s, sizeof(double)) == 0;
}

// ---------------------------------------------------------------
// Load generator properties
// ---------------------------------------------------------------

TEST(LoadGenerator, SameSeedIsBitReproducible)
{
    LoadGenConfig cfg = steadyConfig(500.0);
    cfg.diurnal_amplitude = 0.4;
    cfg.diurnal_period_s = 2.0;
    LoadGenerator a(cfg), b(cfg);
    const auto qa = a.generate(8.0);
    const auto qb = b.generate(8.0);
    ASSERT_EQ(qa.size(), qb.size());
    ASSERT_GT(qa.size(), 100u);
    for (std::size_t i = 0; i < qa.size(); ++i)
        ASSERT_TRUE(sameQuery(qa[i], qb[i])) << "query " << i;
}

TEST(LoadGenerator, BitReproducibleAcrossThreadPoolSizes)
{
    // Generation never touches the pool, so the stream must be
    // byte-identical whatever RECSIM_THREADS would have been.
    LoadGenConfig cfg = steadyConfig(300.0, 23);
    cfg.diurnal_amplitude = 0.5;
    cfg.diurnal_period_s = 1.0;
    auto& pool = util::globalThreadPool();

    pool.resize(1);
    LoadGenerator a(cfg);
    const auto qa = a.generate(4.0);
    pool.resize(8);
    LoadGenerator b(cfg);
    const auto qb = b.generate(4.0);
    pool.resize(1);

    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t i = 0; i < qa.size(); ++i)
        ASSERT_TRUE(sameQuery(qa[i], qb[i])) << "query " << i;
}

TEST(LoadGenerator, InterArrivalMeanMatchesRate)
{
    const double qps = 800.0;
    LoadGenerator gen(steadyConfig(qps, 5));
    const std::size_t n = 20000;
    double prev = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const Query q = gen.next();
        ASSERT_GT(q.arrival_s, prev);
        sum += q.arrival_s - prev;
        prev = q.arrival_s;
    }
    const double mean_gap = sum / static_cast<double>(n);
    // Mean of n exponentials has sd = (1/lambda)/sqrt(n) ~ 0.7%;
    // 4 sigma of headroom.
    EXPECT_NEAR(mean_gap, 1.0 / qps, 0.03 / qps);
}

TEST(LoadGenerator, DiurnalModulationIntegratesToMeanRate)
{
    // Over whole periods the sinusoid cancels: the count must match
    // mean_qps * duration like the unmodulated process.
    LoadGenConfig cfg = steadyConfig(500.0, 9);
    cfg.diurnal_amplitude = 0.8;
    cfg.diurnal_period_s = 5.0;
    LoadGenerator gen(cfg);
    const double duration = 40.0;  // 8 whole periods.
    const auto queries = gen.generate(duration);
    const double expected = cfg.mean_qps * duration;
    // Poisson sd = sqrt(20000) ~ 0.7% of the mean; 4 sigma headroom.
    EXPECT_NEAR(static_cast<double>(queries.size()), expected,
                0.03 * expected);
}

TEST(LoadGenerator, RateOscillatesWithinBandAndStaysPositive)
{
    LoadGenConfig cfg = steadyConfig(100.0);
    cfg.diurnal_amplitude = 0.9;
    cfg.diurnal_period_s = 4.0;
    LoadGenerator gen(cfg);
    double lo = 1e300, hi = -1e300;
    for (double t = 0.0; t < 8.0; t += 0.01) {
        const double r = gen.rate(t);
        EXPECT_GT(r, 0.0);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    EXPECT_NEAR(lo, 100.0 * 0.1, 1.0);
    EXPECT_NEAR(hi, 100.0 * 1.9, 1.0);
}

TEST(LoadGenerator, QueriesCarryDeadlinesAndBoundedSizes)
{
    LoadGenConfig cfg = steadyConfig(200.0, 77);
    cfg.sla_s = 0.02;
    cfg.mean_candidates = 32.0;
    cfg.min_candidates = 4;
    cfg.max_candidates = 64;
    LoadGenerator gen(cfg);
    double mean = 0.0;
    const std::size_t n = 5000;
    for (std::size_t i = 0; i < n; ++i) {
        const Query q = gen.next();
        EXPECT_EQ(q.id, i);
        EXPECT_DOUBLE_EQ(q.deadline_s, q.arrival_s + cfg.sla_s);
        EXPECT_GE(q.candidates, cfg.min_candidates);
        EXPECT_LE(q.candidates, cfg.max_candidates);
        mean += static_cast<double>(q.candidates);
    }
    mean /= static_cast<double>(n);
    // Clamping biases the lognormal mean a little; generous band.
    EXPECT_NEAR(mean, cfg.mean_candidates, 6.0);
}

TEST(LoadGenerator, LoadForModelScalesQuerySizeByLookupWork)
{
    const auto light = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    const auto heavy = model::DlrmConfig::m3Prod();
    const auto light_cfg = loadForModel(light, 100.0, 0.05);
    const auto heavy_cfg = loadForModel(heavy, 100.0, 0.05);
    // Lookup-heavy models must get fewer candidates per query.
    EXPECT_GT(light_cfg.mean_candidates, heavy_cfg.mean_candidates);
    EXPECT_GE(heavy_cfg.mean_candidates, 8.0);
    EXPECT_LE(light_cfg.mean_candidates, 256.0);
    // Distinct models get distinct (stable) stream seeds.
    EXPECT_NE(light_cfg.seed, heavy_cfg.seed);
    EXPECT_EQ(heavy_cfg.seed, loadForModel(heavy, 7.0, 0.1).seed);
}

// ---------------------------------------------------------------
// Scheduler invariants
// ---------------------------------------------------------------

TEST(BatchScheduler, NeverBatchesAQueryPastItsDeadline)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 8;
    cfg.max_wait_s = 0.0;
    BatchScheduler sched(cfg);
    // Head expires before the engine frees up; the later query is
    // still in time.
    sched.enqueue(makeQuery(0, 0.00, 1, 0.01));
    sched.enqueue(makeQuery(1, 0.00, 1, 0.50));
    const double start = 0.10;  // Engine was busy until t=0.10.
    const Batch batch = sched.pop(start);
    for (const Query& q : batch.queries)
        EXPECT_GE(q.deadline_s, start) << "query " << q.id;
    ASSERT_EQ(batch.queries.size(), 1u);
    EXPECT_EQ(batch.queries[0].id, 1u);
    const auto evicted = sched.drainEvicted();
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 0u);
    EXPECT_EQ(sched.evictedCount(), 1u);
}

TEST(BatchScheduler, RespectsQueryCountCap)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 3;
    cfg.max_batch_items = 1000000;
    cfg.max_wait_s = 0.0;
    BatchScheduler sched(cfg);
    for (uint64_t i = 0; i < 10; ++i)
        sched.enqueue(makeQuery(i, 0.0, 1, 1.0));
    std::size_t popped = 0;
    while (!sched.idle()) {
        const Batch b = sched.pop(0.0);
        EXPECT_LE(b.queries.size(), cfg.max_batch_queries);
        EXPECT_FALSE(b.queries.empty());
        popped += b.queries.size();
    }
    EXPECT_EQ(popped, 10u);
    EXPECT_EQ(sched.evictedCount(), 0u);
}

TEST(BatchScheduler, RespectsItemCapButServesOversizedAlone)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 64;
    cfg.max_batch_items = 100;
    cfg.max_wait_s = 0.0;
    BatchScheduler sched(cfg);
    sched.enqueue(makeQuery(0, 0.0, 40, 1.0));
    sched.enqueue(makeQuery(1, 0.0, 40, 1.0));
    sched.enqueue(makeQuery(2, 0.0, 40, 1.0));   // 120 > 100: next batch.
    sched.enqueue(makeQuery(3, 0.0, 500, 1.0));  // Oversized: alone.
    sched.enqueue(makeQuery(4, 0.0, 10, 1.0));

    Batch b = sched.pop(0.0);
    EXPECT_EQ(b.queries.size(), 2u);
    EXPECT_LE(b.totalItems(), cfg.max_batch_items);

    b = sched.pop(0.0);
    ASSERT_EQ(b.queries.size(), 1u);
    EXPECT_EQ(b.queries[0].id, 2u);

    b = sched.pop(0.0);  // Oversized query dispatches alone.
    ASSERT_EQ(b.queries.size(), 1u);
    EXPECT_EQ(b.queries[0].id, 3u);
    EXPECT_EQ(b.totalItems(), 500u);

    b = sched.pop(0.0);
    ASSERT_EQ(b.queries.size(), 1u);
    EXPECT_EQ(b.queries[0].id, 4u);
    EXPECT_TRUE(sched.idle());
}

TEST(BatchScheduler, PreservesFifoOrderWithinAndAcrossBatches)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 4;
    cfg.max_wait_s = 0.0;
    BatchScheduler sched(cfg);
    for (uint64_t i = 0; i < 13; ++i)
        sched.enqueue(
            makeQuery(i, 0.001 * static_cast<double>(i), 1, 1.0));
    uint64_t expected = 0;
    while (!sched.idle()) {
        const Batch b = sched.pop(1.0 /* all arrived, none expired */);
        for (const Query& q : b.queries)
            EXPECT_EQ(q.id, expected++) << "FIFO order broken";
    }
    EXPECT_EQ(expected, 13u);
}

TEST(BatchScheduler, DoesNotBatchQueriesThatHaveNotArrived)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 8;
    cfg.max_wait_s = 0.0;
    BatchScheduler sched(cfg);
    sched.enqueue(makeQuery(0, 0.0, 1, 1.0));
    sched.enqueue(makeQuery(1, 0.5, 1, 1.0));  // Future arrival.
    const Batch b = sched.pop(0.1);
    ASSERT_EQ(b.queries.size(), 1u);
    EXPECT_EQ(b.queries[0].id, 0u);
    EXPECT_EQ(sched.pendingQueries(), 1u);
}

TEST(BatchScheduler, MaxWaitBoundsHeadOfLineWaiting)
{
    // Starvation freedom: a lone trickle query must release by
    // arrival + max_wait even though the batch never fills.
    BatchingConfig cfg;
    cfg.max_batch_queries = 64;
    cfg.max_batch_items = 1 << 20;
    cfg.max_wait_s = 0.01;
    BatchScheduler sched(cfg);
    for (uint64_t i = 0; i < 20; ++i) {
        const double arrival = static_cast<double>(i);  // 1 qps.
        sched.enqueue(makeQuery(i, arrival, 8, arrival + 10.0));
        const double release = sched.releaseTime(arrival);
        EXPECT_LE(release, arrival + cfg.max_wait_s)
            << "query " << i << " starved";
        EXPECT_GE(release, arrival);
        const Batch b = sched.pop(release);
        ASSERT_EQ(b.queries.size(), 1u);
        EXPECT_EQ(b.queries[0].id, i);
    }
    EXPECT_EQ(sched.evictedCount(), 0u);
}

TEST(BatchScheduler, ReleasesEarlyWhenQueuedQueriesFillACap)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 3;
    cfg.max_batch_items = 1 << 20;
    cfg.max_wait_s = 1.0;  // Generous; the cap must cut it short.
    BatchScheduler sched(cfg);
    sched.enqueue(makeQuery(0, 0.00, 1, 10.0));
    sched.enqueue(makeQuery(1, 0.01, 1, 10.0));
    EXPECT_DOUBLE_EQ(sched.releaseTime(0.0), 1.0);  // Head + max_wait.
    sched.enqueue(makeQuery(2, 0.02, 1, 10.0));     // Cap saturated.
    EXPECT_DOUBLE_EQ(sched.releaseTime(0.0), 0.02);
    const Batch b = sched.pop(0.02);
    EXPECT_EQ(b.queries.size(), 3u);
}

TEST(BatchScheduler, ReleaseNeverHeldPastHeadDeadline)
{
    BatchingConfig cfg;
    cfg.max_batch_queries = 64;
    cfg.max_wait_s = 1.0;
    BatchScheduler sched(cfg);
    sched.enqueue(makeQuery(0, 0.0, 1, 0.005));  // Tight deadline.
    EXPECT_DOUBLE_EQ(sched.releaseTime(0.0), 0.005);
}

// ---------------------------------------------------------------
// End-to-end replay over the real engine
// ---------------------------------------------------------------

TEST(InferenceEngine, ReplayAccountsForEveryQuery)
{
    const auto cfg = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    InferenceEngine engine(cfg, 1);
    LoadGenConfig load = steadyConfig(2000.0, 3);
    load.mean_candidates = 16.0;
    load.max_candidates = 64;
    load.sla_s = 0.5;
    LoadGenerator gen(load);
    const auto queries = gen.generate(0.2);
    ASSERT_GT(queries.size(), 50u);

    ReplayConfig rc;
    rc.batching.max_batch_queries = 8;
    rc.batching.max_batch_items = 256;
    rc.batching.max_wait_s = 0.001;
    const ServeReport report = engine.replay(queries, rc);

    EXPECT_EQ(report.offered, queries.size());
    EXPECT_EQ(report.served + report.evicted, report.offered);
    EXPECT_GT(report.batches, 0u);
    EXPECT_GT(report.achieved_qps, 0.0);
    EXPECT_GE(report.makespan_s, report.duration_s);
    EXPECT_GT(report.busy_s, 0.0);
    EXPECT_LE(report.busy_s, report.makespan_s + 1e-9);
    // Percentiles of a latency population are ordered by definition.
    EXPECT_EQ(report.latency.count, report.served);
    EXPECT_GT(report.latency.p50, 0.0);
    EXPECT_LE(report.latency.p50, report.latency.p95);
    EXPECT_LE(report.latency.p95, report.latency.p99);
    EXPECT_LE(report.latency.p99, report.latency.max);
    EXPECT_GE(report.sla_violation_rate, 0.0);
    EXPECT_LE(report.sla_violation_rate, 1.0);
    EXPECT_GE(report.mean_batch_queries, 1.0);
    EXPECT_LE(report.mean_batch_queries,
              static_cast<double>(rc.batching.max_batch_queries));
}

TEST(InferenceEngine, ReplayWindowedLatencyHistogramIsConsistent)
{
    const auto cfg = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    InferenceEngine engine(cfg, 1);
    LoadGenConfig load = steadyConfig(2000.0, 7);
    load.mean_candidates = 16.0;
    load.max_candidates = 64;
    load.sla_s = 0.5;
    LoadGenerator gen(load);
    const auto queries = gen.generate(0.4);
    ASSERT_GT(queries.size(), 100u);

    ReplayConfig rc;
    rc.batching.max_batch_queries = 8;
    rc.batching.max_batch_items = 256;
    rc.batching.max_wait_s = 0.001;
    rc.latency_window_s = 0.05;
    const ServeReport report = engine.replay(queries, rc);
    ASSERT_GT(report.served, 0u);
    ASSERT_FALSE(report.windows.empty());

    std::size_t windowed = 0;
    std::size_t prev_index = 0;
    bool first = true;
    for (const auto& w : report.windows) {
        if (!first) {
            EXPECT_GT(w.index, prev_index);  // strictly increasing
        }
        first = false;
        prev_index = w.index;
        // Windows are keyed on the virtual completion clock.
        EXPECT_DOUBLE_EQ(w.start_s, static_cast<double>(w.index) *
                                        rc.latency_window_s);
        EXPECT_DOUBLE_EQ(w.end_s, w.start_s + rc.latency_window_s);
        ASSERT_GT(w.tail.count, 0u);
        windowed += w.tail.count;
        EXPECT_GT(w.tail.p50, 0.0);
        EXPECT_LE(w.tail.p50, w.tail.p95);
        EXPECT_LE(w.tail.p95, w.tail.p99);
        EXPECT_LE(w.tail.p99, w.tail.max + 1e-12);
    }
    // Every served query lands in exactly one window, and the merged
    // whole-run tail covers the same population.
    EXPECT_EQ(windowed, report.served);
    EXPECT_EQ(report.latency.count, report.served);
}

#ifndef RECSIM_OBS_DISABLED
TEST(InferenceEngine, ReplayRecordsBatchChannelsInFlightRecorder)
{
    auto& rec = obs::FlightRecorder::global();
    rec.configure(1 << 14);
    rec.setEnabled(true);

    const auto cfg = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    InferenceEngine engine(cfg, 1);
    LoadGenConfig load = steadyConfig(2000.0, 5);
    load.sla_s = 0.5;
    LoadGenerator gen(load);
    const auto queries = gen.generate(0.1);
    ReplayConfig rc;
    rc.batching.max_batch_queries = 8;
    rc.batching.max_wait_s = 0.001;
    const ServeReport report = engine.replay(queries, rc);

    rec.setEnabled(false);
    const uint32_t batch_ch = rec.internChannel("serve.batch_s");
    const uint32_t queue_ch = rec.internChannel("serve.queue_depth");
    std::size_t batch_samples = 0, queue_samples = 0;
    for (const auto& sample : rec.snapshot()) {
        if (sample.channel == batch_ch) {
            ++batch_samples;
            EXPECT_GE(sample.value, 0.0);  // service seconds
            EXPECT_GT(sample.rows, 0u);    // batch items
        } else if (sample.channel == queue_ch) {
            ++queue_samples;
        }
    }
    // One sample per retired batch on each channel (capacity is far
    // above the batch count, so nothing wrapped).
    EXPECT_EQ(batch_samples, report.batches);
    EXPECT_EQ(queue_samples, report.batches);
    rec.reset();
}
#endif  // RECSIM_OBS_DISABLED

TEST(InferenceEngine, ServesForwardOnlyGraph)
{
    const auto cfg = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    InferenceEngine engine(cfg, 1);
    const auto& g = engine.forwardGraph();
    EXPECT_TRUE(g.validate().empty());
    for (const auto& node : g.nodes) {
        EXPECT_NE(node.kind, graph::NodeKind::Loss);
        EXPECT_NE(node.kind, graph::NodeKind::OptimizerUpdate);
        EXPECT_NE(node.kind, graph::NodeKind::Comm);
    }
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    data::SyntheticCtrDataset ds(ds_cfg);
    const auto mb = ds.nextBatch(17);
    const double service = engine.scoreBatch(mb);
    EXPECT_GE(service, 0.0);
    EXPECT_EQ(engine.logits().rows(), 17u);
}

// ---------------------------------------------------------------
// Thread-safe latency recording (the TSan-matrix test)
// ---------------------------------------------------------------

TEST(ConcurrentSampleSet, ConcurrentRecordingLosesNothing)
{
    // Worker threads retiring batches record completions into one
    // shared recorder; under the TSan CI matrix this doubles as the
    // race test for the serving path's latency accumulation.
    stats::ConcurrentSampleSet recorder;
    auto& metrics = obs::MetricsRegistry::global();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, &metrics, t] {
            for (int i = 0; i < kPerThread; ++i) {
                recorder.add(static_cast<double>(t) + 1.0);
                metrics.observe("serve.test_latency_s", 0.001);
            }
        });
    }
    for (auto& th : threads)
        th.join();

    ASSERT_EQ(recorder.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    const auto snap = recorder.snapshot();
    double sum = 0.0;
    for (double v : snap.values())
        sum += v;
    // Sum of t+1 over threads, kPerThread each: (1+2+3+4) * 5000.
    EXPECT_DOUBLE_EQ(sum, 10.0 * kPerThread);
    EXPECT_EQ(
        metrics.timing("serve.test_latency_s").count() % kPerThread,
        0u);
    const auto tail = recorder.tail();
    EXPECT_EQ(tail.count, recorder.size());
    EXPECT_DOUBLE_EQ(tail.max, 4.0);
}

} // namespace
} // namespace recsim::serve
