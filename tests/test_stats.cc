/**
 * @file
 * Unit tests for recsim::stats: Welford accumulation and merging,
 * histograms (linear and log), quantiles, KDE, correlations.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/running_stat.h"
#include "stats/sample_set.h"
#include "util/random.h"

namespace recsim::stats {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, MatchesNaiveComputation)
{
    RunningStat rs;
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
    double sum = 0.0;
    for (double x : xs) {
        rs.add(x);
        sum += x;
    }
    const double mean = sum / xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1);

    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_DOUBLE_EQ(rs.mean(), mean);
    EXPECT_NEAR(rs.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 16.0);
    EXPECT_DOUBLE_EQ(rs.sum(), sum);
}

TEST(RunningStat, MergeEqualsSequential)
{
    util::Rng rng(5);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsFallInCorrectBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(5), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(9), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 3.0);
}

TEST(Histogram, OutOfRangeClampsAndCounts)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(3), 1.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25, 3.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 3.0);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 1.0);
}

TEST(Histogram, LogBinsCoverDecades)
{
    Histogram h(1.0, 1.0e6, 6, BinScale::Log10);
    EXPECT_NEAR(h.binLo(0), 1.0, 1e-9);
    EXPECT_NEAR(h.binHi(0), 10.0, 1e-6);
    EXPECT_NEAR(h.binLo(5), 1.0e5, 1.0);
    h.add(50000.0);
    EXPECT_DOUBLE_EQ(h.binCount(4), 1.0);
}

TEST(Histogram, QuantileOfUniformData)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.7);
    h.add(1.5);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('%'), std::string::npos);
}

TEST(HistogramDeath, InvalidRangePanics)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "empty");
    EXPECT_DEATH(Histogram(-1.0, 5.0, 4, BinScale::Log10), "positive");
}

TEST(Kde, IntegratesToApproximatelyOne)
{
    util::Rng rng(3);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.normal(10.0, 2.0));
    GaussianKde kde(samples);
    const auto curve = kde.evaluate(0.0, 20.0, 400);
    double integral = 0.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        integral += 0.5 * (curve[i].density + curve[i - 1].density) *
            (curve[i].x - curve[i - 1].x);
    }
    EXPECT_NEAR(integral, 1.0, 0.03);
}

TEST(Kde, PeaksNearSampleMean)
{
    util::Rng rng(9);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.normal(5.0, 1.0));
    GaussianKde kde(samples);
    const auto curve = kde.evaluate(0.0, 10.0, 101);
    double best_x = 0.0, best_d = 0.0;
    for (const auto& pt : curve) {
        if (pt.density > best_d) {
            best_d = pt.density;
            best_x = pt.x;
        }
    }
    EXPECT_NEAR(best_x, 5.0, 0.5);
}

TEST(Kde, ExplicitBandwidthIsUsed)
{
    GaussianKde kde({1.0, 2.0, 3.0}, 0.7);
    EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.7);
}

TEST(Kde, DegenerateSamplesStillFinite)
{
    GaussianKde kde({2.0, 2.0, 2.0});
    EXPECT_GT(kde.density(2.0), 0.0);
    EXPECT_TRUE(std::isfinite(kde.density(100.0)));
}

TEST(SampleSet, QuantilesExact)
{
    SampleSet s({4.0, 1.0, 3.0, 2.0, 5.0});
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, SummaryFields)
{
    SampleSet s({1.0, 2.0, 3.0, 4.0});
    const Summary sum = s.summarize();
    EXPECT_EQ(sum.count, 4u);
    EXPECT_DOUBLE_EQ(sum.mean, 2.5);
    EXPECT_DOUBLE_EQ(sum.min, 1.0);
    EXPECT_DOUBLE_EQ(sum.max, 4.0);
    EXPECT_DOUBLE_EQ(sum.median, 2.5);
}

TEST(SampleSet, DescribeMentionsCount)
{
    SampleSet s({1.0, 2.0});
    EXPECT_NE(s.describe().find("n=2"), std::string::npos);
}

TEST(Percentile, SingleElementReturnsItAtEveryPercentile)
{
    const std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(percentile(one, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 50.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 95.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 99.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 100.0), 42.0);
}

TEST(Percentile, HandComputedInterpolation)
{
    // Linear interpolation at position p/100 * (n-1); n = 10, values
    // 1..10 (unsorted input must not matter).
    const std::vector<double> v = {10, 1, 9, 2, 8, 3, 7, 4, 6, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.5);    // pos 4.5
    EXPECT_NEAR(percentile(v, 95.0), 9.55, 1e-12); // pos 8.55
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 9.91);   // pos 8.91
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
}

TEST(Percentile, DuplicateHeavySample)
{
    // n = 5: sorted {2, 2, 2, 2, 7}.
    const std::vector<double> v = {2.0, 7.0, 2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);   // pos 2.0
    EXPECT_NEAR(percentile(v, 95.0), 6.0, 1e-12); // pos 3.8 -> 2+0.8*5
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 6.8);   // pos 3.96
    // All-duplicate sample: every percentile is the value.
    const std::vector<double> dup(7, 3.5);
    EXPECT_DOUBLE_EQ(percentile(dup, 50.0), 3.5);
    EXPECT_DOUBLE_EQ(percentile(dup, 99.0), 3.5);
}

TEST(Percentile, AgreesWithSampleSetQuantile)
{
    util::Rng rng(17);
    std::vector<double> v;
    for (int i = 0; i < 257; ++i)
        v.push_back(rng.lognormal(0.0, 1.0));
    const SampleSet s(v);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(percentile(v, q * 100.0), s.quantile(q));
}

TEST(TailSummary, HandComputedFields)
{
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0, 5.0};
    const TailSummary t = tailSummary(v);
    EXPECT_EQ(t.count, 5u);
    EXPECT_DOUBLE_EQ(t.mean, 3.0);
    EXPECT_DOUBLE_EQ(t.p50, 3.0);
    EXPECT_DOUBLE_EQ(t.p95, 4.8);  // pos 3.8 -> 4 + 0.8 * 1
    EXPECT_DOUBLE_EQ(t.p99, 4.96);
    EXPECT_DOUBLE_EQ(t.max, 5.0);

    const TailSummary empty = tailSummary({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(ConcurrentSampleSet, SnapshotMatchesSequentialAdds)
{
    ConcurrentSampleSet c;
    for (int i = 1; i <= 5; ++i)
        c.add(static_cast<double>(i));
    EXPECT_EQ(c.size(), 5u);
    EXPECT_DOUBLE_EQ(c.snapshot().mean(), 3.0);
    EXPECT_DOUBLE_EQ(c.tail().p50, 3.0);
}

TEST(Correlation, PerfectPositive)
{
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero)
{
    util::Rng rng(21);
    std::vector<double> x, y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(rng.normal());
        y.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
    EXPECT_NEAR(spearman(x, y), 0.0, 0.05);
}

TEST(Correlation, SpearmanInvariantToMonotoneTransform)
{
    util::Rng rng(25);
    std::vector<double> x, y, y_exp;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.normal();
        x.push_back(v);
        y.push_back(2.0 * v + 0.1 * rng.normal());
    }
    for (double v : y)
        y_exp.push_back(std::exp(v));
    EXPECT_NEAR(spearman(x, y), spearman(x, y_exp), 1e-9);
}

TEST(Correlation, ConstantSeriesGivesZero)
{
    const std::vector<double> x = {1, 1, 1};
    const std::vector<double> y = {1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

} // namespace
} // namespace recsim::stats
