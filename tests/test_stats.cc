/**
 * @file
 * Unit tests for recsim::stats: Welford accumulation and merging,
 * histograms (linear and log), quantiles, KDE, correlations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/log_histogram.h"
#include "stats/running_stat.h"
#include "stats/sample_set.h"
#include "util/random.h"

namespace recsim::stats {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, MatchesNaiveComputation)
{
    RunningStat rs;
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
    double sum = 0.0;
    for (double x : xs) {
        rs.add(x);
        sum += x;
    }
    const double mean = sum / xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1);

    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_DOUBLE_EQ(rs.mean(), mean);
    EXPECT_NEAR(rs.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 16.0);
    EXPECT_DOUBLE_EQ(rs.sum(), sum);
}

TEST(RunningStat, MergeEqualsSequential)
{
    util::Rng rng(5);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsFallInCorrectBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(5), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(9), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 3.0);
}

TEST(Histogram, OutOfRangeClampsAndCounts)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(3), 1.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25, 3.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 3.0);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 1.0);
}

TEST(Histogram, LogBinsCoverDecades)
{
    Histogram h(1.0, 1.0e6, 6, BinScale::Log10);
    EXPECT_NEAR(h.binLo(0), 1.0, 1e-9);
    EXPECT_NEAR(h.binHi(0), 10.0, 1e-6);
    EXPECT_NEAR(h.binLo(5), 1.0e5, 1.0);
    h.add(50000.0);
    EXPECT_DOUBLE_EQ(h.binCount(4), 1.0);
}

TEST(Histogram, QuantileOfUniformData)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.7);
    h.add(1.5);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('%'), std::string::npos);
}

TEST(HistogramDeath, InvalidRangePanics)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "empty");
    EXPECT_DEATH(Histogram(-1.0, 5.0, 4, BinScale::Log10), "positive");
}

TEST(Kde, IntegratesToApproximatelyOne)
{
    util::Rng rng(3);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.normal(10.0, 2.0));
    GaussianKde kde(samples);
    const auto curve = kde.evaluate(0.0, 20.0, 400);
    double integral = 0.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        integral += 0.5 * (curve[i].density + curve[i - 1].density) *
            (curve[i].x - curve[i - 1].x);
    }
    EXPECT_NEAR(integral, 1.0, 0.03);
}

TEST(Kde, PeaksNearSampleMean)
{
    util::Rng rng(9);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.normal(5.0, 1.0));
    GaussianKde kde(samples);
    const auto curve = kde.evaluate(0.0, 10.0, 101);
    double best_x = 0.0, best_d = 0.0;
    for (const auto& pt : curve) {
        if (pt.density > best_d) {
            best_d = pt.density;
            best_x = pt.x;
        }
    }
    EXPECT_NEAR(best_x, 5.0, 0.5);
}

TEST(Kde, ExplicitBandwidthIsUsed)
{
    GaussianKde kde({1.0, 2.0, 3.0}, 0.7);
    EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.7);
}

TEST(Kde, DegenerateSamplesStillFinite)
{
    GaussianKde kde({2.0, 2.0, 2.0});
    EXPECT_GT(kde.density(2.0), 0.0);
    EXPECT_TRUE(std::isfinite(kde.density(100.0)));
}

TEST(SampleSet, QuantilesExact)
{
    SampleSet s({4.0, 1.0, 3.0, 2.0, 5.0});
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, SummaryFields)
{
    SampleSet s({1.0, 2.0, 3.0, 4.0});
    const Summary sum = s.summarize();
    EXPECT_EQ(sum.count, 4u);
    EXPECT_DOUBLE_EQ(sum.mean, 2.5);
    EXPECT_DOUBLE_EQ(sum.min, 1.0);
    EXPECT_DOUBLE_EQ(sum.max, 4.0);
    EXPECT_DOUBLE_EQ(sum.median, 2.5);
}

TEST(SampleSet, DescribeMentionsCount)
{
    SampleSet s({1.0, 2.0});
    EXPECT_NE(s.describe().find("n=2"), std::string::npos);
}

TEST(Percentile, SingleElementReturnsItAtEveryPercentile)
{
    const std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(percentile(one, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 50.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 95.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 99.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 100.0), 42.0);
}

TEST(Percentile, HandComputedInterpolation)
{
    // Linear interpolation at position p/100 * (n-1); n = 10, values
    // 1..10 (unsorted input must not matter).
    const std::vector<double> v = {10, 1, 9, 2, 8, 3, 7, 4, 6, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.5);    // pos 4.5
    EXPECT_NEAR(percentile(v, 95.0), 9.55, 1e-12); // pos 8.55
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 9.91);   // pos 8.91
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
}

TEST(Percentile, DuplicateHeavySample)
{
    // n = 5: sorted {2, 2, 2, 2, 7}.
    const std::vector<double> v = {2.0, 7.0, 2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);   // pos 2.0
    EXPECT_NEAR(percentile(v, 95.0), 6.0, 1e-12); // pos 3.8 -> 2+0.8*5
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 6.8);   // pos 3.96
    // All-duplicate sample: every percentile is the value.
    const std::vector<double> dup(7, 3.5);
    EXPECT_DOUBLE_EQ(percentile(dup, 50.0), 3.5);
    EXPECT_DOUBLE_EQ(percentile(dup, 99.0), 3.5);
}

TEST(Percentile, AgreesWithSampleSetQuantile)
{
    util::Rng rng(17);
    std::vector<double> v;
    for (int i = 0; i < 257; ++i)
        v.push_back(rng.lognormal(0.0, 1.0));
    const SampleSet s(v);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(percentile(v, q * 100.0), s.quantile(q));
}

TEST(TailSummary, HandComputedFields)
{
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0, 5.0};
    const TailSummary t = tailSummary(v);
    EXPECT_EQ(t.count, 5u);
    EXPECT_DOUBLE_EQ(t.mean, 3.0);
    EXPECT_DOUBLE_EQ(t.p50, 3.0);
    EXPECT_DOUBLE_EQ(t.p95, 4.8);  // pos 3.8 -> 4 + 0.8 * 1
    EXPECT_DOUBLE_EQ(t.p99, 4.96);
    EXPECT_DOUBLE_EQ(t.max, 5.0);

    const TailSummary empty = tailSummary({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(ConcurrentSampleSet, SnapshotMatchesSequentialAdds)
{
    ConcurrentSampleSet c;
    for (int i = 1; i <= 5; ++i)
        c.add(static_cast<double>(i));
    EXPECT_EQ(c.size(), 5u);
    EXPECT_DOUBLE_EQ(c.snapshot().mean(), 3.0);
    EXPECT_DOUBLE_EQ(c.tail().p50, 3.0);
}

TEST(Correlation, PerfectPositive)
{
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero)
{
    util::Rng rng(21);
    std::vector<double> x, y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(rng.normal());
        y.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
    EXPECT_NEAR(spearman(x, y), 0.0, 0.05);
}

TEST(Correlation, SpearmanInvariantToMonotoneTransform)
{
    util::Rng rng(25);
    std::vector<double> x, y, y_exp;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.normal();
        x.push_back(v);
        y.push_back(2.0 * v + 0.1 * rng.normal());
    }
    for (double v : y)
        y_exp.push_back(std::exp(v));
    EXPECT_NEAR(spearman(x, y), spearman(x, y_exp), 1e-9);
}

TEST(Correlation, ConstantSeriesGivesZero)
{
    const std::vector<double> x = {1, 1, 1};
    const std::vector<double> y = {1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

// ---------------------------------------------------------------------
// LogHistogram: the documented relative error bound against the exact
// order statistics, merging, clamping, concurrency.
// ---------------------------------------------------------------------

TEST(LogHistogram, EmptySnapshotIsAllZero)
{
    LogHistogram h;
    const LogHistogramSnapshot snap = h.snapshot();
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_EQ(snap.tail().count, 0u);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(LogHistogram, QuantileWithinDocumentedBoundOfNearestRank)
{
    // The documented contract: quantile(q) is within relative_error of
    // the actual sample at nearest-rank round(q * (count - 1)).
    const double a = 0.01;
    LogHistogram h(a);
    util::Rng rng(7);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        const double v = std::exp(rng.normal() * 2.0 - 3.0);
        values.push_back(v);
        h.add(v);
    }
    std::sort(values.begin(), values.end());
    const LogHistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, values.size());
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        const auto rank = static_cast<std::size_t>(std::llround(
            q * static_cast<double>(values.size() - 1)));
        const double exact = values[rank];
        const double est = snap.quantile(q);
        EXPECT_NEAR(est, exact, a * exact + 1e-12)
            << "q=" << q << " rank=" << rank;
    }
}

TEST(LogHistogram, AgreesWithExactPercentileOracle)
{
    // Against the interpolating stats::percentile: the interpolated
    // value lies between adjacent order statistics, so the histogram
    // estimate is within relative_error of one of them plus the gap
    // between the two.
    const double a = 0.01;
    LogHistogram h(a);
    util::Rng rng(13);
    std::vector<double> values;
    for (int i = 0; i < 4000; ++i) {
        const double v = 0.5 + rng.uniform();  // Dense in [0.5, 1.5].
        values.push_back(v);
        h.add(v);
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const LogHistogramSnapshot snap = h.snapshot();
    for (const double pct : {50.0, 90.0, 95.0, 99.0}) {
        const double exact = percentile(values, pct);
        const double est = snap.quantile(pct / 100.0);
        const double pos =
            pct / 100.0 * static_cast<double>(sorted.size() - 1);
        const double gap =
            sorted[static_cast<std::size_t>(std::ceil(pos))] -
            sorted[static_cast<std::size_t>(std::floor(pos))];
        EXPECT_NEAR(est, exact, a * exact + gap + 1e-12)
            << "pct=" << pct;
    }
}

TEST(LogHistogram, ExtremeQuantilesAreExact)
{
    LogHistogram h;
    for (const double v : {0.37, 1.91, 0.0042, 12.5, 0.9})
        h.add(v);
    const LogHistogramSnapshot snap = h.snapshot();
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0042);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 12.5);
    EXPECT_DOUBLE_EQ(snap.min, 0.0042);
    EXPECT_DOUBLE_EQ(snap.max, 12.5);
    EXPECT_NEAR(snap.sum, 0.37 + 1.91 + 0.0042 + 12.5 + 0.9, 1e-12);
}

TEST(LogHistogram, QuantileIsMonotoneInQ)
{
    LogHistogram h;
    util::Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        h.add(std::exp(rng.normal()));
    const LogHistogramSnapshot snap = h.snapshot();
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const double est = snap.quantile(q);
        EXPECT_GE(est, prev) << "q=" << q;
        prev = est;
    }
}

TEST(LogHistogram, MergeMatchesCombinedAdds)
{
    LogHistogram a, b, all;
    util::Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const double v = std::exp(rng.normal());
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    const LogHistogramSnapshot merged = a.snapshot();
    const LogHistogramSnapshot direct = all.snapshot();
    EXPECT_EQ(merged.count, direct.count);
    EXPECT_EQ(merged.bins, direct.bins);
    EXPECT_DOUBLE_EQ(merged.min, direct.min);
    EXPECT_DOUBLE_EQ(merged.max, direct.max);
    EXPECT_NEAR(merged.sum, direct.sum, 1e-9);
}

TEST(LogHistogram, OutOfRangeValuesClampIntoEdgeBuckets)
{
    LogHistogram h(0.01, 1e-3, 1e3);
    h.add(1e-9);   // Below min_value.
    h.add(1e9);    // Above max_value.
    h.add(-5.0);   // Nonpositive.
    h.add(1.0);
    const LogHistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 4u);
    // Exact extremes are tracked outside the buckets.
    EXPECT_DOUBLE_EQ(snap.min, -5.0);
    EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(LogHistogram, ConcurrentAddsLoseNothing)
{
    LogHistogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            util::Rng rng(static_cast<uint64_t>(t) + 1);
            for (int i = 0; i < kPerThread; ++i)
                h.add(std::exp(rng.normal()));
        });
    }
    for (auto& th : threads)
        th.join();
    const LogHistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<uint64_t>(kThreads) * kPerThread);
    uint64_t bin_total = 0;
    for (const uint64_t b : snap.bins)
        bin_total += b;
    EXPECT_EQ(bin_total, snap.count);
    EXPECT_GT(snap.min, 0.0);
    EXPECT_GE(snap.max, snap.min);
}

// ---------------------------------------------------------------------
// WindowedHistogram: time routing, merged tail, clamping.
// ---------------------------------------------------------------------

TEST(WindowedHistogram, RoutesObservationsByTime)
{
    WindowedHistogram w(1.0);
    w.add(0.5, 10.0);
    w.add(0.9, 20.0);
    w.add(1.5, 30.0);
    w.add(5.2, 40.0);
    const auto windows = w.windows();
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_EQ(windows[0].index, 0u);
    EXPECT_EQ(windows[0].tail.count, 2u);
    EXPECT_DOUBLE_EQ(windows[0].start_s, 0.0);
    EXPECT_DOUBLE_EQ(windows[0].end_s, 1.0);
    EXPECT_EQ(windows[1].index, 1u);
    EXPECT_EQ(windows[1].tail.count, 1u);
    EXPECT_EQ(windows[2].index, 5u);
    EXPECT_DOUBLE_EQ(windows[2].start_s, 5.0);
    EXPECT_EQ(w.count(), 4u);
}

TEST(WindowedHistogram, TailMergesAllWindows)
{
    WindowedHistogram w(0.5);
    std::vector<double> values;
    util::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const double v = std::exp(rng.normal() - 2.0);
        values.push_back(v);
        w.add(static_cast<double>(i) * 0.01, v);
    }
    const TailSummary tail = w.tail();
    EXPECT_EQ(tail.count, values.size());
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(std::llround(
        0.95 * static_cast<double>(values.size() - 1)));
    EXPECT_NEAR(tail.p95, values[rank],
                w.relativeError() * values[rank] + 1e-12);
    EXPECT_DOUBLE_EQ(tail.max, values.back());
}

TEST(WindowedHistogram, ClampsBeyondMaxWindows)
{
    WindowedHistogram w(1.0, /*max_windows=*/4);
    w.add(0.5, 1.0);
    w.add(100.0, 2.0);  // Far past the last window.
    EXPECT_EQ(w.clamped(), 1u);
    const auto windows = w.windows();
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[1].index, 3u);  // Landed in the last slot.
    EXPECT_EQ(w.count(), 2u);
}

TEST(WindowedHistogram, ConcurrentAddsAcrossWindows)
{
    WindowedHistogram w(0.1, 64);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&w, t] {
            util::Rng rng(static_cast<uint64_t>(t) + 99);
            for (int i = 0; i < kPerThread; ++i)
                w.add(rng.uniform() * 6.0, std::exp(rng.normal()));
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(w.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    uint64_t window_total = 0;
    for (const auto& win : w.windows())
        window_total += win.tail.count;
    EXPECT_EQ(window_total, w.count());
}

} // namespace
} // namespace recsim::stats
