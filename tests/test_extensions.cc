/**
 * @file
 * Tests for the extension features: quantized embedding tables, the
 * analytic Zipf cache model, trainer-side hot-row caching in the cost
 * model, row-wise auto-splitting of oversized tables, and multi-node
 * GPU scale-out.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/iteration_model.h"
#include "model/config.h"
#include "nn/quantized_embedding.h"
#include "placement/partitioner.h"
#include "placement/placement.h"
#include "util/random.h"

namespace recsim {
namespace {

using placement::EmbeddingPlacement;

// ---- Zipf top-k mass (analytic cache hit rate) ----------------------

TEST(ZipfTopMass, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(util::zipfTopMass(100, 1.05, 0), 0.0);
    EXPECT_DOUBLE_EQ(util::zipfTopMass(100, 1.05, 100), 1.0);
    EXPECT_DOUBLE_EQ(util::zipfTopMass(100, 1.05, 200), 1.0);
}

TEST(ZipfTopMass, UniformIsProportional)
{
    EXPECT_NEAR(util::zipfTopMass(1000, 0.0, 100), 0.1, 1e-12);
}

TEST(ZipfTopMass, MonotoneInK)
{
    double prev = 0.0;
    for (uint64_t k : {1, 10, 100, 1000, 10000}) {
        const double mass = util::zipfTopMass(100000, 1.05, k);
        EXPECT_GT(mass, prev);
        prev = mass;
    }
}

TEST(ZipfTopMass, SkewConcentratesMass)
{
    // With s > 1, 1% of the indices carries far more than 1% of mass.
    EXPECT_GT(util::zipfTopMass(1000000, 1.05, 10000), 0.5);
    EXPECT_LT(util::zipfTopMass(1000000, 0.5, 10000), 0.2);
}

TEST(ZipfTopMass, MatchesEmpiricalSampler)
{
    util::Rng rng(1);
    const uint64_t n = 10000, k = 100;
    util::ZipfSampler zipf(n, 1.05);
    std::size_t hits = 0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i)
        hits += zipf(rng) < k;
    const double empirical = static_cast<double>(hits) / samples;
    EXPECT_NEAR(util::zipfTopMass(n, 1.05, k), empirical, 0.02);
}

// ---- Quantized embeddings ------------------------------------------

TEST(Quantization, BytesPerElement)
{
    EXPECT_DOUBLE_EQ(nn::bytesPerElement(nn::EmbeddingPrecision::Fp32),
                     4.0);
    EXPECT_DOUBLE_EQ(nn::bytesPerElement(nn::EmbeddingPrecision::Fp16),
                     2.0);
    EXPECT_DOUBLE_EQ(nn::bytesPerElement(nn::EmbeddingPrecision::Int8),
                     1.0);
    EXPECT_DOUBLE_EQ(nn::bytesPerElement(nn::EmbeddingPrecision::Int4),
                     0.5);
}

TEST(Quantization, Fp16RoundTripExactForRepresentable)
{
    EXPECT_EQ(nn::roundToFp16(0.5f), 0.5f);
    EXPECT_EQ(nn::roundToFp16(-2.0f), -2.0f);
    EXPECT_EQ(nn::roundToFp16(0.0f), 0.0f);
}

TEST(Quantization, Fp16ErrorBounded)
{
    util::Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const float v = static_cast<float>(rng.uniform(-2.0, 2.0));
        const float r = nn::roundToFp16(v);
        // fp16 has a 10-bit mantissa: relative error < 2^-10.
        EXPECT_NEAR(r, v, std::max(1e-4, std::abs(v) / 1024.0));
    }
}

class QuantizedTableTest
    : public ::testing::TestWithParam<nn::EmbeddingPrecision>
{
};

TEST_P(QuantizedTableTest, RowErrorsSmall)
{
    util::Rng rng(3);
    nn::EmbeddingBag bag(64, 8, rng);
    nn::QuantizedEmbeddingBag q(bag, GetParam());
    double worst = 0.0;
    for (std::size_t r = 0; r < bag.hashSize(); ++r)
        worst = std::max(worst, q.rowError(bag, r));
    // Row values are in [-1/sqrt(8), 1/sqrt(8)] ~ [-0.35, 0.35].
    switch (GetParam()) {
      case nn::EmbeddingPrecision::Fp32:
        EXPECT_EQ(worst, 0.0);
        break;
      case nn::EmbeddingPrecision::Fp16:
        EXPECT_LT(worst, 1e-3);
        break;
      case nn::EmbeddingPrecision::Int8:
        EXPECT_LT(worst, 0.35 * 2.0 / 255.0 * 1.01);
        break;
      case nn::EmbeddingPrecision::Int4:
        EXPECT_LT(worst, 0.35 * 2.0 / 15.0 * 1.01);
        break;
    }
}

TEST_P(QuantizedTableTest, PooledForwardApproximatesFp32)
{
    util::Rng rng(4);
    nn::EmbeddingBag bag(128, 16, rng);
    nn::QuantizedEmbeddingBag q(bag, GetParam());

    nn::SparseBatch batch;
    batch.offsets = {0, 3, 5};
    batch.indices = {1, 7, 7, 42, 999};  // includes hash wrap

    tensor::Tensor exact, approx;
    bag.forward(batch, exact);
    q.forward(batch, approx);
    ASSERT_TRUE(approx.sameShape(exact));
    const double tolerance =
        GetParam() == nn::EmbeddingPrecision::Int4 ? 0.15 : 0.02;
    for (std::size_t i = 0; i < exact.size(); ++i)
        EXPECT_NEAR(approx.data()[i], exact.data()[i], tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Precisions, QuantizedTableTest,
    ::testing::Values(nn::EmbeddingPrecision::Fp32,
                      nn::EmbeddingPrecision::Fp16,
                      nn::EmbeddingPrecision::Int8,
                      nn::EmbeddingPrecision::Int4));

TEST(Quantization, ParamBytesShrink)
{
    util::Rng rng(5);
    nn::EmbeddingBag bag(1000, 64, rng);
    const auto fp32 = nn::QuantizedEmbeddingBag(
        bag, nn::EmbeddingPrecision::Fp32).paramBytes();
    const auto fp16 = nn::QuantizedEmbeddingBag(
        bag, nn::EmbeddingPrecision::Fp16).paramBytes();
    const auto int8 = nn::QuantizedEmbeddingBag(
        bag, nn::EmbeddingPrecision::Int8).paramBytes();
    EXPECT_EQ(fp32, bag.paramBytes());
    EXPECT_EQ(fp16, fp32 / 2);
    EXPECT_LT(int8, fp32 / 3);
}

TEST(Quantization, RequantizeTracksUpdatedMaster)
{
    util::Rng rng(6);
    nn::EmbeddingBag bag(16, 4, rng);
    nn::QuantizedEmbeddingBag q(bag, nn::EmbeddingPrecision::Int8);
    bag.table.fill(0.75f);
    q.quantizeFrom(bag);
    std::vector<float> row(4);
    q.dequantizeRow(3, row.data());
    for (float v : row)
        EXPECT_NEAR(v, 0.75f, 0.01f);
}

// ---- Cost-model quantization knob -----------------------------------

TEST(CostQuantization, CompressionMakesM3FitBigBasin)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 800);
    sys.emb_bytes_per_element = 4.0;
    EXPECT_FALSE(cost::IterationModel(m3, sys).estimate().feasible);
    sys.emb_bytes_per_element = 2.0;
    const auto fp16 = cost::IterationModel(m3, sys).estimate();
    EXPECT_TRUE(fp16.feasible);
    EXPECT_GT(fp16.throughput, 0.0);
}

TEST(CostQuantization, CompressionSpeedsUpGathers)
{
    const auto m1 = model::DlrmConfig::m1Prod();
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    const double fp32 =
        cost::IterationModel(m1, sys).estimate().throughput;
    sys.emb_bytes_per_element = 1.0;
    const double int8 =
        cost::IterationModel(m1, sys).estimate().throughput;
    EXPECT_GT(int8, fp32);
}

// ---- Hot-row cache ---------------------------------------------------

TEST(RemoteCache, HitFractionZeroWithoutCache)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    cost::IterationModel im(m3, sys);
    EXPECT_DOUBLE_EQ(im.remoteCacheHitFraction(), 0.0);
}

TEST(RemoteCache, HitFractionGrowsWithCache)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    double prev = 0.0;
    for (double gb : {0.5, 2.0, 8.0, 32.0}) {
        auto sys = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::RemotePs, 800, 8);
        sys.remote_cache_bytes = gb * 1e9;
        cost::IterationModel im(m3, sys);
        const double hit = im.remoteCacheHitFraction();
        EXPECT_GT(hit, prev);
        EXPECT_LE(hit, 1.0);
        prev = hit;
    }
    EXPECT_GT(prev, 0.5);
}

TEST(RemoteCache, CacheImprovesRemoteThroughput)
{
    const auto m3 = model::DlrmConfig::m3Prod();
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    sys.hogwild_threads = 4;
    const double cold =
        cost::IterationModel(m3, sys).estimate().throughput;
    sys.remote_cache_bytes = 4e9;
    const double warm =
        cost::IterationModel(m3, sys).estimate().throughput;
    EXPECT_GT(warm, cold * 1.5);
}

TEST(RemoteCache, SkewBeatsUniformAccess)
{
    // The cache still fully holds small tables under uniform access,
    // but Zipf skew lets it capture the hot head of the big ones too.
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    sys.remote_cache_bytes = 4e9;

    auto uniform = model::DlrmConfig::m3Prod();
    for (auto& spec : uniform.sparse)
        spec.zipf_exponent = 0.0;
    const double u = cost::IterationModel(uniform, sys)
        .remoteCacheHitFraction();

    const double z = cost::IterationModel(model::DlrmConfig::m3Prod(),
                                          sys)
        .remoteCacheHitFraction();
    EXPECT_GT(z, u + 0.05);
}

// ---- Row-wise auto-split ---------------------------------------------

TEST(RowWiseSplit, OversizedTablesChunkToFit)
{
    placement::TableCosts costs(
        {{{"big", 1000, 1.0, 1.0, 0, 0}}}, 16);
    costs.bytes[0] = 100.0;
    costs.access_bytes[0] = 10.0;
    const auto chunked = placement::rowWiseSplitOversized(costs, 30.0);
    ASSERT_EQ(chunked.costs.bytes.size(), 4u);
    for (double b : chunked.costs.bytes)
        EXPECT_LE(b, 30.0);
    double total = 0.0, access = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        total += chunked.costs.bytes[i];
        access += chunked.costs.access_bytes[i];
        EXPECT_EQ(chunked.chunk_of[i], 0u);
    }
    EXPECT_DOUBLE_EQ(total, 100.0);
    EXPECT_DOUBLE_EQ(access, 10.0);
}

TEST(RowWiseSplit, SmallTablesUntouched)
{
    placement::TableCosts costs(
        {{{"a", 10, 1.0, 1.0, 0, 0}, {"b", 20, 1.0, 1.0, 0, 0}}}, 16);
    const auto chunked = placement::rowWiseSplitOversized(costs, 1e9);
    EXPECT_EQ(chunked.costs.bytes.size(), 2u);
    EXPECT_EQ(chunked.chunk_of[1], 1u);
}

TEST(RowWiseSplit, MonsterTableBecomesPlaceable)
{
    // One table 8x a GPU's budget: unplaceable without splitting,
    // placeable across 8+ GPUs with it.
    model::DlrmConfig cfg = model::DlrmConfig::testSuite(64, 1, 1);
    cfg.sparse[0].hash_size = 300000000;  // ~96 GB resident at d=64
    const auto plan = placement::planPlacement(
        EmbeddingPlacement::GpuMemory, cfg, hw::Platform::bigBasin());
    EXPECT_TRUE(plan.feasible);
    EXPECT_GT(plan.gpus_used, 4u);
}

// ---- Multi-node scale-out --------------------------------------------

TEST(ScaleOut, MultiTerabyteModelNeedsMultipleZions)
{
    auto big = model::DlrmConfig::m3Prod();
    for (auto& spec : big.sparse)
        spec.hash_size *= 8;  // ~1 TB
    auto zion = cost::SystemConfig::zionSetup(
        EmbeddingPlacement::HostMemory, 800);
    zion.num_trainers = 1;
    EXPECT_FALSE(cost::IterationModel(big, zion).estimate().feasible);
    zion.num_trainers = 2;
    EXPECT_TRUE(cost::IterationModel(big, zion).estimate().feasible);
}

TEST(ScaleOut, ZionGangScalesNearLinearly)
{
    auto big = model::DlrmConfig::m3Prod();
    for (auto& spec : big.sparse)
        spec.hash_size *= 8;
    auto sys = cost::SystemConfig::zionSetup(
        EmbeddingPlacement::HostMemory, 800);
    sys.num_trainers = 2;
    const double two =
        cost::IterationModel(big, sys).estimate().throughput;
    sys.num_trainers = 8;
    const double eight =
        cost::IterationModel(big, sys).estimate().throughput;
    EXPECT_GT(eight, two * 3.0);
    EXPECT_LE(eight, two * 4.0 + 1e-6);
}

TEST(ScaleOut, PowerScalesWithNodes)
{
    auto sys = cost::SystemConfig::zionSetup(
        EmbeddingPlacement::HostMemory, 800);
    sys.num_trainers = 4;
    EXPECT_NEAR(sys.totalPowerWatts(),
                4.0 * hw::Platform::zionPrototype().power_watts, 1e-6);
}

TEST(ScaleOut, GlobalBatchCountsNodes)
{
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 800);
    sys.num_trainers = 4;
    EXPECT_EQ(sys.globalBatch(), 800u * 8 * 4);
}

TEST(ScaleOut, SingleNodeUnchangedByExtension)
{
    // num_trainers == 1 must reproduce the paper-configuration numbers.
    const auto m1 = model::DlrmConfig::m1Prod();
    auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    const auto one = cost::IterationModel(m1, sys).estimate();
    sys.num_trainers = 1;
    const auto still_one = cost::IterationModel(m1, sys).estimate();
    EXPECT_DOUBLE_EQ(one.throughput, still_one.throughput);
}

TEST(ScaleOut, MultiBigBasinPaysInterNodeAllToAll)
{
    // Same aggregate GPU count: 2 Big Basins sharding a model that fits
    // on one node must not beat 1 Big Basin per-node efficiency.
    const auto m1 = model::DlrmConfig::m1Prod();
    auto one = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 1600);
    const double single =
        cost::IterationModel(m1, one).estimate().throughput;
    auto two = one;
    two.num_trainers = 2;
    const double dual =
        cost::IterationModel(m1, two).estimate().throughput;
    EXPECT_GT(dual, single);            // more hardware helps...
    EXPECT_LT(dual, 2.0 * single * 1.01);  // ...at sub-linear scaling
}

} // namespace
} // namespace recsim
