/**
 * @file
 * Unit tests for recsim::util: formatting, RNG determinism and
 * distribution sanity, Zipf and power-law samplers, units, tables.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_utils.h"
#include "util/units.h"

namespace recsim::util {
namespace {

TEST(Format, SubstitutesPlaceholdersInOrder)
{
    EXPECT_EQ(format("a {} c {}", 1, "d"), "a 1 c d");
}

TEST(Format, NoPlaceholders)
{
    EXPECT_EQ(format("plain"), "plain");
}

TEST(Format, ExtraArgumentsAreAppended)
{
    EXPECT_EQ(format("x {}", 1, 2), "x 1 2");
}

TEST(Format, MissingArgumentsLeavePlaceholder)
{
    EXPECT_EQ(format("x {} {}", 7), "x 7 {}");
}

TEST(Format, HandlesDoublesAndBools)
{
    EXPECT_EQ(format("{} {}", 1.5, true), "1.5 1");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts) {
        EXPECT_GT(c, n / 10 * 0.9);
        EXPECT_LT(c, n / 10 * 1.1);
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalMeanMatchesFormula)
{
    Rng rng(19);
    const double mu = 0.3, sigma = 0.5;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormal(mu, sigma);
    EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2.0), 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonMeanTest, SampleMeanMatches)
{
    Rng rng(31);
    const double mean = GetParam();
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.5, 2.0, 8.0, 28.0, 60.0));

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkProducesIndependentStreams)
{
    Rng parent(41);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDeterministic)
{
    Rng p1(43), p2(43);
    Rng a = p1.fork(9);
    Rng b = p2.fork(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a(), b());
}

class ZipfTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfTest, SamplesWithinSupport)
{
    Rng rng(47);
    ZipfSampler zipf(1000, GetParam());
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = zipf(rng);
        EXPECT_LT(v, 1000u);
    }
}

TEST_P(ZipfTest, SkewConcentratesMassOnSmallIndices)
{
    Rng rng(53);
    const double s = GetParam();
    ZipfSampler zipf(10000, s);
    int head = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        head += zipf(rng) < 100;
    const double head_fraction = static_cast<double>(head) / n;
    if (s >= 1.0) {
        // With s >= 1 the first 1% of indices takes most of the mass.
        EXPECT_GT(head_fraction, 0.4);
    } else if (s == 0.0) {
        EXPECT_NEAR(head_fraction, 0.01, 0.005);
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.0, 0.8, 1.0, 1.05, 1.5));

TEST(Zipf, UniformWhenExponentZero)
{
    Rng rng(59);
    ZipfSampler zipf(100, 0.0);
    std::vector<int> counts(100, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Zipf, SingletonSupport)
{
    Rng rng(61);
    ZipfSampler zipf(1, 1.2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf(rng), 0u);
}

TEST(PowerLawLength, MeanMatchesAnalytical)
{
    Rng rng(67);
    PowerLawLengthSampler sampler(1.5, 64);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(sampler(rng));
    EXPECT_NEAR(sum / n, sampler.mean(), sampler.mean() * 0.03);
}

TEST(PowerLawLength, RespectsTruncation)
{
    Rng rng(71);
    PowerLawLengthSampler sampler(1.1, 32);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = sampler(rng);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 32u);
    }
}

TEST(PowerLawLength, HigherAlphaMeansShorter)
{
    PowerLawLengthSampler flat(1.01, 100);
    PowerLawLengthSampler steep(2.5, 100);
    EXPECT_GT(flat.mean(), steep.mean());
}

TEST(Units, GbpsConvertsToBytes)
{
    EXPECT_DOUBLE_EQ(gbps(25.0), 25.0e9 / 8.0);
    EXPECT_DOUBLE_EQ(gBps(900.0), 900.0e9);
}

TEST(Strings, BytesToString)
{
    EXPECT_EQ(bytesToString(512.0), "512 B");
    EXPECT_EQ(bytesToString(2.0 * kGiB), "2.00 GiB");
    EXPECT_EQ(bytesToString(1.5 * kTiB), "1.50 TiB");
}

TEST(Strings, CountToString)
{
    EXPECT_EQ(countToString(5700000.0), "5.7M");
    EXPECT_EQ(countToString(30.0), "30");
    EXPECT_EQ(countToString(2.0e9), "2.0B");
}

TEST(Strings, RateToString)
{
    EXPECT_EQ(rateToString(1.0e12), "1.00 TB/s");
    EXPECT_EQ(rateToString(900.0e9), "900.00 GB/s");
}

TEST(Strings, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
    EXPECT_EQ(join({}, "-"), "");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table;
    table.header({"name", "value"});
    table.row({"alpha", "1"});
    table.row({"b", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Assert, PassingConditionDoesNotAbort)
{
    RECSIM_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(AssertDeath, FailingConditionPanics)
{
    EXPECT_DEATH(RECSIM_ASSERT(false, "boom {}", 42), "boom 42");
}

} // namespace
} // namespace recsim::util
