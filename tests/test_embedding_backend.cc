/**
 * @file
 * Tests for the pluggable embedding storage backends
 * (nn/embedding_backend.h) and the tier plumbing built on top of them:
 *
 *  - the backend contract itself — CachedBackend results bitwise-equal
 *    to DramBackend across the trainable model zoo, optimizers and
 *    thread counts, gradcheck included;
 *  - the zero-allocation steady state of EmbeddingBag::backward()'s
 *    flat slot map (verified with a counting operator new);
 *  - cost::gatherEfficiency / tieredGatherBandwidth limits and the
 *    agreement between the analytic Zipf top-mass hit rate and what
 *    CachedBackend actually measures on a Zipf trace;
 *  - placement::allocateHotTier budget accounting and the tier
 *    annotations carried through StepGraph fusion and the cost model.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <numeric>
#include <vector>

#include "cost/cache_model.h"
#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "graph/step_graph.h"
#include "hw/platform.h"
#include "model/dlrm.h"
#include "nn/embedding_backend.h"
#include "nn/embedding_bag.h"
#include "nn/optimizer.h"
#include "placement/placement.h"
#include "tensor/tensor.h"
#include "util/random.h"
#include "util/thread_pool.h"

// ---- Counting allocator -------------------------------------------------
// Global operator new replacement so the zero-allocation contract of
// EmbeddingBag::backward() is testable: the counter must not move
// across a steady-state backward call.

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
} // namespace

// GCC pairs the replaced operator new with free() lexically and warns;
// the pairing is correct here because the replacement is malloc-backed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void*
operator new(std::size_t n)
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void*
operator new(std::size_t n, std::align_val_t al)
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a =
        std::max(static_cast<std::size_t>(al), sizeof(void*));
    void* p = nullptr;
    if (posix_memalign(&p, a, n ? n : 1) == 0)
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept
{
    return ::operator new(n, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

namespace recsim {
namespace {

using nn::CachedBackend;
using nn::CachedBackendConfig;
using nn::EmbeddingBag;
using nn::EmbeddingTierStats;
using nn::SparseBatch;
using nn::SparseGrad;
using tensor::Tensor;

/** Restore the global pool size when a test returns. */
struct PoolSizeGuard
{
    ~PoolSizeGuard()
    {
        util::globalThreadPool().resize(util::configuredThreads());
    }
};

/** Build a CSR batch from per-example index lists. */
SparseBatch
makeBatch(const std::vector<std::vector<uint64_t>>& examples)
{
    SparseBatch batch;
    batch.offsets.push_back(0);
    for (const auto& ex : examples) {
        for (uint64_t id : ex)
            batch.indices.push_back(id);
        batch.offsets.push_back(batch.indices.size());
    }
    return batch;
}

/** A deterministic Zipf-distributed batch (ids already < hash size). */
SparseBatch
zipfBatch(const util::ZipfSampler& zipf, util::Rng& rng,
          std::size_t examples, std::size_t lookups_per_example)
{
    SparseBatch batch;
    batch.offsets.push_back(0);
    for (std::size_t e = 0; e < examples; ++e) {
        for (std::size_t k = 0; k < lookups_per_example; ++k)
            batch.indices.push_back(zipf(rng));
        batch.offsets.push_back(batch.indices.size());
    }
    return batch;
}

/** Central-difference gradient of scalar-valued f wrt x[i]. */
double
numericalGrad(Tensor& x, std::size_t i,
              const std::function<double()>& f, float eps = 1e-3f)
{
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const double plus = f();
    x.data()[i] = saved - eps;
    const double minus = f();
    x.data()[i] = saved;
    return (plus - minus) / (2.0 * eps);
}

// ---- Backend bitwise equivalence ---------------------------------------

/** Everything a short training run produces, for bitwise comparison. */
struct RunFingerprint
{
    std::vector<double> losses;
    std::vector<float> probe_logits;
    std::vector<float> table_params;
};

/**
 * Train @p steps optimizer steps on a fresh model + dataset (fixed
 * seeds) and fingerprint the result. The only degree of freedom is the
 * installed embedding backend — every fingerprint byte must match
 * between the Dram and Cached runs.
 */
RunFingerprint
trainRun(const model::DlrmConfig& cfg, bool cached, bool adagrad,
         std::size_t steps, std::size_t batch)
{
    data::DatasetConfig dc;
    dc.num_dense = cfg.num_dense;
    dc.sparse = cfg.sparse;
    dc.seed = 5;
    data::SyntheticCtrDataset data(dc);
    data.materialize((steps + 1) * batch);

    model::Dlrm model(cfg, 7);
    if (cached) {
        // A budget that forces a mixed hot/cold split (neither empty
        // nor whole-table) with mid-run refreshes: the interesting
        // regime for equivalence.
        model.installCachedEmbeddingBackends(
            0.3 * 1.25 * cfg.embeddingBytes(), 2);
    }

    nn::Sgd sgd(0.05f);
    nn::Adagrad ada(0.05f);
    RunFingerprint fp;
    for (std::size_t s = 0; s < steps; ++s) {
        fp.losses.push_back(
            model.forwardBackward(data.epochBatch(s * batch, batch)));
        if (adagrad)
            model.step(ada);
        else
            model.step(sgd);
    }

    Tensor logits;
    model.forward(data.epochBatch(steps * batch, batch), logits);
    fp.probe_logits.assign(logits.data(),
                           logits.data() + logits.size());
    for (const auto& t : model.tables())
        fp.table_params.insert(fp.table_params.end(), t.table.data(),
                               t.table.data() + t.table.size());
    return fp;
}

void
expectBitwiseEqual(const RunFingerprint& a, const RunFingerprint& b,
                   const std::string& what)
{
    ASSERT_EQ(a.losses.size(), b.losses.size()) << what;
    for (std::size_t i = 0; i < a.losses.size(); ++i)
        EXPECT_EQ(a.losses[i], b.losses[i])
            << what << " loss diverged at step " << i;
    ASSERT_EQ(a.probe_logits.size(), b.probe_logits.size()) << what;
    EXPECT_EQ(0, std::memcmp(a.probe_logits.data(),
                             b.probe_logits.data(),
                             a.probe_logits.size() * sizeof(float)))
        << what << " probe logits differ";
    ASSERT_EQ(a.table_params.size(), b.table_params.size()) << what;
    EXPECT_EQ(0, std::memcmp(a.table_params.data(),
                             b.table_params.data(),
                             a.table_params.size() * sizeof(float)))
        << what << " table parameters differ";
}

TEST(BackendEquivalence, ModelZooBitwiseAcrossThreadsAndOptimizers)
{
    PoolSizeGuard guard;
    const std::vector<model::DlrmConfig> zoo = {
        model::DlrmConfig::testSuite(16, 4, 5000, 32, 2, 4.0, 0),
        model::DlrmConfig::tinyReplica(4, 8, 600, 8),
    };
    for (const auto& cfg : zoo) {
        for (const bool adagrad : {false, true}) {
            for (const std::size_t threads : {1u, 2u, 8u}) {
                util::globalThreadPool().resize(threads);
                const auto dram =
                    trainRun(cfg, false, adagrad, 4, 64);
                const auto cached =
                    trainRun(cfg, true, adagrad, 4, 64);
                expectBitwiseEqual(
                    dram, cached,
                    cfg.name + (adagrad ? "/adagrad" : "/sgd") +
                        "/threads=" + std::to_string(threads));
            }
        }
    }
}

TEST(BackendEquivalence, GradCheckThroughCachedBackend)
{
    util::Rng rng(11);
    EmbeddingBag bag(6, 3, rng, nn::Pooling::Mean);
    CachedBackendConfig cfg;
    cfg.hot_rows = 3;
    cfg.refresh_every = 1;
    bag.setBackend(nn::makeCachedBackend(cfg));
    const SparseBatch batch = makeBatch({{0, 2, 2}, {4}});

    auto loss = [&] {
        Tensor out;
        bag.forward(batch, out);
        double acc = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            acc += 0.5 * static_cast<double>(out.data()[i]) *
                out.data()[i];
        return acc;
    };

    Tensor out;
    bag.forward(batch, out);
    SparseGrad grad;
    bag.backward(batch, out, grad);  // d(0.5*sum(y^2))/dy = y

    for (std::size_t r = 0; r < grad.rows.size(); ++r) {
        for (std::size_t j = 0; j < bag.dim(); ++j) {
            const std::size_t flat =
                static_cast<std::size_t>(grad.rows[r]) * bag.dim() + j;
            EXPECT_NEAR(grad.values.at(r, j),
                        numericalGrad(bag.table, flat, loss), 2e-2);
        }
    }
}

TEST(BackendEquivalence, TierStatsBitIdenticalAcrossThreadCounts)
{
    PoolSizeGuard guard;
    bool have_ref = false;
    EmbeddingTierStats ref;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        util::globalThreadPool().resize(threads);
        util::Rng init_rng(3);
        EmbeddingBag bag(4096, 32, init_rng);
        CachedBackendConfig cfg;
        cfg.hot_rows = 256;
        cfg.refresh_every = 2;
        bag.setBackend(nn::makeCachedBackend(cfg));

        util::Rng data_rng(17);
        const util::ZipfSampler zipf(4096, 1.05);
        Tensor out;
        for (int b = 0; b < 8; ++b)
            bag.forward(zipfBatch(zipf, data_rng, 64, 6), out);

        const EmbeddingTierStats s = bag.backend().stats();
        EXPECT_EQ(s.lookups(), 64u * 6u * 8u);
        if (!have_ref) {
            ref = s;
            have_ref = true;
            continue;
        }
        EXPECT_EQ(ref.hot_lookups, s.hot_lookups)
            << "threads=" << threads;
        EXPECT_EQ(ref.cold_lookups, s.cold_lookups)
            << "threads=" << threads;
        EXPECT_EQ(ref.hot_read_bytes, s.hot_read_bytes);
        EXPECT_EQ(ref.cold_read_bytes, s.cold_read_bytes);
        EXPECT_EQ(ref.batches, s.batches);
    }
}

// ---- Zero-allocation backward ------------------------------------------

TEST(FlatSlotMap, SteadyStateBackwardAllocatesNothing)
{
    PoolSizeGuard guard;
    // One pool thread: parallelFor runs chunks inline through the
    // non-allocating ChunkFn, so every allocation the counter sees is
    // attributable to backward() itself.
    util::globalThreadPool().resize(1);

    util::Rng rng(3);
    EmbeddingBag bag(128, 16, rng);
    util::Rng data_rng(9);
    const util::ZipfSampler zipf(128, 1.05);
    const SparseBatch batch = zipfBatch(zipf, data_rng, 32, 8);

    Tensor out;
    bag.forward(batch, out);
    SparseGrad grad;
    bag.backward(batch, out, grad);  // sizes the scratch + grad
    bag.backward(batch, out, grad);  // steady state

    const std::uint64_t before =
        g_alloc_calls.load(std::memory_order_relaxed);
    bag.backward(batch, out, grad);
    const std::uint64_t after =
        g_alloc_calls.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after)
        << "steady-state backward touched the allocator "
        << (after - before) << " time(s)";
}

// ---- CachedBackend hot-set mechanics -----------------------------------

TEST(CachedBackendHotSet, WholeTablePinServesEverythingHot)
{
    util::Rng rng(4);
    EmbeddingBag bag(32, 4, rng);
    CachedBackendConfig cfg;
    cfg.hot_rows = 100;  // > hash size: the whole table is pinned
    cfg.refresh_every = 4;
    bag.setBackend(nn::makeCachedBackend(cfg));

    // The pin installs at the end of the first batch (the cache
    // starts empty, so batch 1 takes compulsory misses like any
    // cache); from then on every lookup hits.
    Tensor out;
    bag.forward(makeBatch({{0, 5, 9}, {31}}), out);
    bag.backend().resetStats();
    // Rows never seen before must still hit.
    bag.forward(makeBatch({{17, 17}, {2, 30}}), out);
    bag.forward(makeBatch({{0, 11}, {23, 31}}), out);

    const auto& backend =
        static_cast<const CachedBackend&>(bag.backend());
    const EmbeddingTierStats s = backend.stats();
    EXPECT_EQ(s.cold_lookups, 0u);
    EXPECT_EQ(s.hot_lookups, 8u);
    EXPECT_EQ(backend.hotSetSize(), 32u);
    EXPECT_TRUE(backend.isHot(0));
    EXPECT_TRUE(backend.isHot(31));
}

TEST(CachedBackendHotSet, TopKRebuildIsDeterministic)
{
    util::Rng rng(4);
    EmbeddingBag bag(8, 2, rng);
    CachedBackendConfig cfg;
    cfg.hot_rows = 2;
    cfg.refresh_every = 1;
    bag.setBackend(nn::makeCachedBackend(cfg));

    // Frequencies after one batch: row 3 -> 3, rows 1 and 5 -> 2
    // (tie), row 6 -> 1. Top-2 must be {3, 1}: higher count first,
    // lower row id on ties.
    Tensor out;
    bag.forward(makeBatch({{3, 3, 3, 5, 5}, {1, 1, 6}}), out);

    const auto& backend =
        static_cast<const CachedBackend&>(bag.backend());
    EXPECT_EQ(backend.refreshes(), 1u);
    EXPECT_EQ(backend.hotSetSize(), 2u);
    EXPECT_TRUE(backend.isHot(3));
    EXPECT_TRUE(backend.isHot(1));
    EXPECT_FALSE(backend.isHot(5));
    EXPECT_FALSE(backend.isHot(6));

    // The first batch classified against an empty hot set.
    EXPECT_EQ(backend.stats().hot_lookups, 0u);
    // The second batch classifies against {3, 1}.
    bag.forward(makeBatch({{3, 1, 5}, {6}}), out);
    EXPECT_EQ(backend.stats().hot_lookups, 2u);
    EXPECT_EQ(backend.stats().cold_lookups, 10u);
}

TEST(CachedBackendHotSet, RefreshCadenceFollowsConfig)
{
    util::Rng rng(4);
    EmbeddingBag bag(16, 2, rng);
    CachedBackendConfig cfg;
    cfg.hot_rows = 4;
    cfg.refresh_every = 3;
    bag.setBackend(nn::makeCachedBackend(cfg));

    const auto& backend =
        static_cast<const CachedBackend&>(bag.backend());
    Tensor out;
    const SparseBatch batch = makeBatch({{1, 2}, {3}});
    for (int b = 1; b <= 9; ++b) {
        bag.forward(batch, out);
        EXPECT_EQ(backend.refreshes(),
                  static_cast<uint64_t>(b / 3))
            << "after batch " << b;
    }
}

// ---- Analytic cache model (satellite: cost::gatherEfficiency) ----------

TEST(CacheModel, GatherEfficiencyCachedLimitIsExact)
{
    const double cache = 40e6;
    // Anything at or under the cache runs at exactly cached_eff.
    EXPECT_EQ(cost::gatherEfficiency(10e6, cache, 0.15, 0.9), 0.9);
    EXPECT_EQ(cost::gatherEfficiency(cache, cache, 0.15, 0.9), 0.9);
}

TEST(CacheModel, GatherEfficiencyMonotoneInResidentBytes)
{
    const double cache = 27.5e6;
    const double random_eff = 0.15;
    const double cached_eff = 0.9;
    double prev = cached_eff + 1e-12;
    for (double resident = 1e6; resident < 1e13; resident *= 1.7) {
        const double eff = cost::gatherEfficiency(resident, cache,
                                                  random_eff,
                                                  cached_eff);
        EXPECT_LE(eff, prev + 1e-15) << "resident=" << resident;
        EXPECT_GE(eff, random_eff - 1e-15) << "resident=" << resident;
        EXPECT_LE(eff, cached_eff + 1e-15) << "resident=" << resident;
        prev = eff;
    }
    // Terabyte-scale working sets are pure random access.
    EXPECT_NEAR(cost::gatherEfficiency(1e14, cache, 0.15, 0.9), 0.15,
                1e-3);
}

TEST(CacheModel, CacheTrafficHitFractionBounds)
{
    const double cache = 27.5e6;
    EXPECT_EQ(cost::cacheTrafficHitFraction(cache / 2, cache), 1.0);
    EXPECT_EQ(cost::cacheTrafficHitFraction(cache, cache), 1.0);
    double prev = 1.0;
    for (double resident = cache; resident < 1e13; resident *= 2.0) {
        const double h =
            cost::cacheTrafficHitFraction(resident, cache);
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, 1.0);
        EXPECT_LE(h, prev + 1e-15);
        prev = h;
    }
}

TEST(CacheModel, TieredBandwidthSingleTierFastPathIsBitExact)
{
    const double cold_bw = 76.8e9;
    const double resident = 5e9;
    const double cache = 27.5e6;
    const double random_eff = 0.15;
    // hot_hit == 0 must reproduce the single-tier expression to the
    // last bit — that is what keeps every pre-tier config unchanged.
    EXPECT_EQ(cost::tieredGatherBandwidth(cold_bw, 900e9, 0.0, resident,
                                          cache, random_eff),
              cold_bw * cost::gatherEfficiency(resident, cache,
                                               random_eff));
}

TEST(CacheModel, TieredBandwidthLimitsAndOrdering)
{
    const double cold_bw = 76.8e9;
    const double hot_bw = 900e9;
    const double resident = 5e9;
    const double cache = 27.5e6;
    const double random_eff = 0.15;
    const double cached_eff = 0.9;

    // All-hot traffic runs at the managed-tier streaming rate.
    EXPECT_NEAR(cost::tieredGatherBandwidth(cold_bw, hot_bw, 1.0,
                                            resident, cache, random_eff,
                                            cached_eff),
                hot_bw * cached_eff, hot_bw * 1e-12);

    // More hot traffic never slows the gather down (hot rate above
    // cold rate here), and every blend sits between the two tiers.
    const double lo = cold_bw *
        cost::gatherEfficiency(resident, cache, random_eff, cached_eff);
    const double hi = hot_bw * cached_eff;
    double prev = lo;
    for (double h = 0.0; h <= 1.0; h += 0.1) {
        const double bw = cost::tieredGatherBandwidth(
            cold_bw, hot_bw, h, resident, cache, random_eff,
            cached_eff);
        EXPECT_GE(bw, prev - 1e-3) << "hot_hit=" << h;
        EXPECT_GE(bw, lo - 1e-3);
        EXPECT_LE(bw, hi + 1e-3);
        prev = bw;
    }
}

TEST(CacheModel, CachedBackendHitRateMatchesZipfTopMass)
{
    PoolSizeGuard guard;
    util::globalThreadPool().resize(3);

    constexpr uint64_t kHash = 4096;
    constexpr std::size_t kHotRows = 320;
    constexpr double kExponent = 1.05;

    util::Rng init_rng(6);
    EmbeddingBag bag(kHash, 8, init_rng);
    CachedBackendConfig cfg;
    cfg.hot_rows = kHotRows;
    cfg.refresh_every = 1;
    bag.setBackend(nn::makeCachedBackend(cfg));

    // Fold-free trace: the sampler draws hashed ids directly, so the
    // analytic prediction is exactly the Zipf top-K traffic mass.
    util::Rng data_rng(23);
    const util::ZipfSampler zipf(kHash, kExponent);
    Tensor out;
    for (int b = 0; b < 12; ++b)  // learn the head
        bag.forward(zipfBatch(zipf, data_rng, 256, 4), out);
    bag.backend().resetStats();
    for (int b = 0; b < 16; ++b)  // steady-state measurement
        bag.forward(zipfBatch(zipf, data_rng, 256, 4), out);

    const double measured = bag.backend().stats().hitRate();
    const double predicted =
        util::zipfTopMass(kHash, kExponent, kHotRows);
    EXPECT_NEAR(measured, predicted, 0.05)
        << "measured=" << measured << " predicted=" << predicted;
}

// ---- Placement hot-tier allocation -------------------------------------

TEST(PlacementHotTier, BudgetRespectedAndHitMonotone)
{
    const auto cfg =
        model::DlrmConfig::testSuite(16, 6, 20000, 32, 2, 6.0, 0);
    const hw::Platform host = hw::Platform::dualSocketCpu();
    placement::PlacementOptions opts;
    const double full =
        opts.memory_overhead_factor * cfg.embeddingBytes();

    for (const double frac : {0.0, 0.05, 0.2, 0.5, 1.0}) {
        opts.hot_tier_bytes = frac * full;
        const auto plan = placement::planPlacement(
            placement::EmbeddingPlacement::HostMemory, cfg, host, opts);
        ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;

        const double allocated =
            std::accumulate(plan.table_hot_bytes.begin(),
                            plan.table_hot_bytes.end(), 0.0);
        EXPECT_NEAR(allocated, plan.hot_tier_bytes,
                    1e-6 * (1.0 + allocated));
        EXPECT_LE(plan.hot_tier_bytes,
                  opts.hot_tier_bytes * (1.0 + 1e-9) + 1.0);
        for (const double h : plan.table_hot_hit_fraction) {
            EXPECT_GE(h, 0.0);
            EXPECT_LE(h, 1.0 + 1e-12);
        }

        if (frac == 0.0) {
            EXPECT_EQ(plan.hot_tier_bytes, 0.0);
            EXPECT_EQ(plan.hot_hit_fraction, 0.0);
        }
        if (frac == 1.0) {
            // The budget covers every table with overhead: all hot.
            EXPECT_NEAR(plan.hot_hit_fraction, 1.0, 1e-9);
        }
    }
}

TEST(PlacementHotTier, HitMonotoneInBudgetForSingleTable)
{
    // On one table the whole-table packing cliff can't interleave
    // with the leftover-cache split, so more budget can only add hot
    // rows and the predicted hit fraction is monotone. (Across many
    // tables the greedy whole-table packing trades per-table caches
    // for fully-resident tables, which is deliberately not monotone.)
    const auto cfg =
        model::DlrmConfig::testSuite(16, 1, 40000, 32, 2, 6.0, 0);
    const hw::Platform host = hw::Platform::dualSocketCpu();
    placement::PlacementOptions opts;
    const double full =
        opts.memory_overhead_factor * cfg.embeddingBytes();

    double prev_hit = -1.0;
    for (int i = 0; i <= 10; ++i) {
        const double frac = static_cast<double>(i) / 10.0;
        opts.hot_tier_bytes = frac * full;
        const auto plan = placement::planPlacement(
            placement::EmbeddingPlacement::HostMemory, cfg, host, opts);
        ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
        EXPECT_GE(plan.hot_hit_fraction, prev_hit - 1e-12)
            << "hit fraction regressed at budget fraction " << frac;
        prev_hit = plan.hot_hit_fraction;
    }
    EXPECT_NEAR(prev_hit, 1.0, 1e-9);
}

TEST(PlacementHotTier, GraphAnnotationsSurviveFusePass)
{
    const auto cfg =
        model::DlrmConfig::testSuite(16, 4, 30000, 32, 2, 6.0, 0);
    const hw::Platform host = hw::Platform::dualSocketCpu();
    placement::PlacementOptions opts;
    opts.hot_tier_bytes =
        0.3 * opts.memory_overhead_factor * cfg.embeddingBytes();
    const auto plan = placement::planPlacement(
        placement::EmbeddingPlacement::HostMemory, cfg, host, opts);
    ASSERT_TRUE(plan.feasible);
    ASSERT_GT(plan.hot_tier_bytes, 0.0);

    graph::StepGraph g = graph::buildModelStepGraph(cfg);
    placement::bindStepGraph(g, plan, opts.num_sparse_ps);

    std::size_t annotated = 0;
    for (const auto& node : g.nodes)
        if (node.hot_tier_bytes > 0.0) {
            ++annotated;
            EXPECT_GT(node.hot_hit_fraction, 0.0);
            EXPECT_LE(node.hot_hit_fraction, 1.0 + 1e-12);
        }
    EXPECT_GT(annotated, 0u);

    const graph::WorkSummary before = graph::summarize(g);
    EXPECT_NEAR(before.emb_hot_tier_bytes, plan.hot_tier_bytes,
                1e-6 * plan.hot_tier_bytes);
    EXPECT_GT(before.emb_hot_hit_fraction, 0.0);
    EXPECT_LE(before.emb_hot_hit_fraction, 1.0 + 1e-12);

    graph::fusePass(g);
    const graph::WorkSummary after = graph::summarize(g);
    EXPECT_NEAR(after.emb_hot_tier_bytes, before.emb_hot_tier_bytes,
                1e-6 * before.emb_hot_tier_bytes);
    EXPECT_NEAR(after.emb_hot_hit_fraction,
                before.emb_hot_hit_fraction, 1e-9);
}

// ---- Cost-model tier threading -----------------------------------------

TEST(CostTierThreading, HotTierExportsHitFractionAndHelpsThroughput)
{
    const auto m =
        model::DlrmConfig::testSuite(64, 8, 2000000, 128, 3, 12.0);

    auto base_sys = cost::SystemConfig::bigBasinSetup(
        placement::EmbeddingPlacement::HostMemory, 512);
    const cost::IterationModel base(m, base_sys);
    EXPECT_EQ(base.hotTierHitFraction(), 0.0);

    auto hot_sys = base_sys;
    hot_sys.emb_hot_tier_bytes = 0.25 * 1.25 * m.embeddingBytes();
    const cost::IterationModel hot(m, hot_sys);
    EXPECT_GT(hot.hotTierHitFraction(), 0.0);
    EXPECT_LE(hot.hotTierHitFraction(), 1.0 + 1e-12);

    // A hot tier can only speed embedding gathers up.
    EXPECT_GE(hot.estimate().throughput,
              base.estimate().throughput * (1.0 - 1e-12));
}

} // namespace
} // namespace recsim
