/**
 * @file
 * Tests for the public core API: Estimator (compare, optimal batch,
 * placement ranking) and the Section V DesignSpaceExplorer.
 */
#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/explorer.h"

namespace recsim::core {
namespace {

using placement::EmbeddingPlacement;

TEST(Estimator, EstimateMatchesIterationModel)
{
    Estimator est;
    const auto m = model::DlrmConfig::m1Prod();
    const auto sys = cost::SystemConfig::cpuSetup(6, 8, 2);
    const auto direct = cost::IterationModel(m, sys).estimate();
    const auto via_api = est.estimate(m, sys);
    EXPECT_DOUBLE_EQ(via_api.throughput, direct.throughput);
}

TEST(Estimator, CompareComputesRelativeMetrics)
{
    Estimator est;
    const auto m = model::DlrmConfig::m1Prod();
    const auto cmp = est.compare(
        m, cost::SystemConfig::cpuSetup(6, 8, 2, 200, 1),
        cost::SystemConfig::bigBasinSetup(EmbeddingPlacement::GpuMemory,
                                          1600));
    EXPECT_GT(cmp.relative_throughput, 1.0);
    EXPECT_GT(cmp.relative_power_efficiency, 1.0);
    EXPECT_NEAR(cmp.relative_throughput,
                cmp.candidate.throughput / cmp.baseline.throughput,
                1e-12);
}

TEST(Estimator, OptimalBatchPicksSaturationKnee)
{
    Estimator est;
    const auto m = model::DlrmConfig::m1Prod();
    const auto sys = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::GpuMemory, 100);
    const std::vector<std::size_t> candidates =
        {100, 200, 400, 800, 1600, 3200, 6400, 12800};
    const auto best = est.optimalBatch(m, sys, candidates);
    // The knee should be an interior point: bigger than the smallest
    // candidate, but not the largest (throughput saturates).
    EXPECT_GT(best.system.batch_size, candidates.front());
    EXPECT_LT(best.system.batch_size, candidates.back());
    // Within tolerance of the true peak.
    const auto peak = est.estimate(m, [&] {
        auto s = sys;
        s.batch_size = candidates.back();
        return s;
    }());
    EXPECT_GT(best.estimate.throughput, peak.throughput * 0.9);
}

TEST(Estimator, OptimalBatchLargerForGpuThanCpu)
{
    Estimator est;
    const auto m = model::DlrmConfig::testSuite(256, 32, 100000);
    const std::vector<std::size_t> candidates =
        {50, 100, 200, 400, 800, 1600, 3200};
    const auto cpu = est.optimalBatch(
        m, cost::SystemConfig::cpuSetup(1, 1, 1, 200, 1), candidates);
    const auto gpu = est.optimalBatch(
        m, cost::SystemConfig::bigBasinSetup(
               EmbeddingPlacement::GpuMemory, 200), candidates);
    // Section V: "distributed training on CPUs uses a much smaller
    // batch size ... GPUs require higher mini-batch sizes".
    EXPECT_GE(gpu.system.batch_size, cpu.system.batch_size);
}

TEST(Estimator, RankPlacementsSortedAndFeasible)
{
    Estimator est;
    const auto m = model::DlrmConfig::m2Prod();
    const auto ranked = est.rankPlacements(
        m, cost::SystemConfig::bigBasinSetup(
               EmbeddingPlacement::GpuMemory, 3200));
    ASSERT_GE(ranked.size(), 2u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_GE(ranked[i - 1].estimate.throughput,
                  ranked[i].estimate.throughput);
        EXPECT_TRUE(ranked[i].estimate.feasible);
    }
    // Hybrid degenerates to GPU memory when everything fits, so either
    // may rank first.
    EXPECT_TRUE(ranked.front().system.placement ==
                    EmbeddingPlacement::GpuMemory ||
                ranked.front().system.placement ==
                    EmbeddingPlacement::Hybrid);
}

TEST(Estimator, RankPlacementsOnZionPrefersHostMemory)
{
    Estimator est;
    const auto m = model::DlrmConfig::m2Prod();
    const auto ranked = est.rankPlacements(
        m, cost::SystemConfig::zionSetup(EmbeddingPlacement::GpuMemory,
                                         3200));
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().system.placement,
              EmbeddingPlacement::HostMemory);
}

TEST(Estimator, CpuPlatformOnlyRanksCpuLocal)
{
    Estimator est;
    const auto ranked = est.rankPlacements(
        model::DlrmConfig::m1Prod(),
        cost::SystemConfig::cpuSetup(6, 8, 2));
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked.front().system.placement,
              EmbeddingPlacement::CpuLocal);
}

TEST(Explorer, FeatureSweepCoversGrid)
{
    DesignSpaceExplorer explorer;
    const auto rows = explorer.featureSweep({64, 256}, {4, 32});
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].label, "d64/s4");
    EXPECT_EQ(rows[3].label, "d256/s32");
    for (const auto& row : rows) {
        EXPECT_GT(row.cpu.throughput, 0.0);
        EXPECT_GT(row.gpu.throughput, 0.0);
        EXPECT_GT(row.throughputRatio(), 1.0);
        EXPECT_GT(row.efficiencyRatio(), 0.0);
    }
}

TEST(Explorer, BatchSweepUsesPairedBatches)
{
    DesignSpaceExplorer explorer;
    const auto rows = explorer.batchSweep(
        256, 32, {50, 100, 200}, {400, 800, 1600});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].label, "cpu_b50/gpu_b400");
    EXPECT_GT(rows[2].gpu.throughput, rows[0].gpu.throughput);
}

TEST(Explorer, HashSweepMarksInfeasibleFrontier)
{
    DesignSpaceExplorer explorer;
    const auto rows = explorer.hashSweep(
        256, 32, {10000, 1000000, 100000000});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_TRUE(rows[0].gpu.feasible);
    EXPECT_FALSE(rows[2].gpu.feasible);
    EXPECT_FALSE(rows[2].cpu.feasible);
}

TEST(Explorer, MlpSweepShowsCpuFallingFaster)
{
    DesignSpaceExplorer explorer;
    const auto rows = explorer.mlpSweep(
        256, 32, {{64, 2}, {512, 3}, {2048, 4}});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].label, "512^3");
    const double cpu_drop =
        rows[0].cpu.throughput / rows[2].cpu.throughput;
    const double gpu_drop =
        rows[0].gpu.throughput / rows[2].gpu.throughput;
    EXPECT_GT(cpu_drop, gpu_drop);
}

TEST(Explorer, TestSuiteDefaultsMatchSectionV)
{
    const TestSuiteParams params;
    EXPECT_EQ(params.hash_size, 100000u);
    EXPECT_EQ(params.cpu_batch, 200u);
    EXPECT_EQ(params.gpu_batch, 1600u);
    EXPECT_EQ(params.truncation, 32u);
    const auto cpu = params.cpuSystem();
    EXPECT_EQ(cpu.num_trainers, 1u);
    EXPECT_EQ(cpu.num_sparse_ps, 1u);
    EXPECT_EQ(cpu.num_dense_ps, 1u);
}

} // namespace
} // namespace recsim::core
