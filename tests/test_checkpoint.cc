/**
 * @file
 * Tests for model checkpointing: bit-exact save/restore, shape-mismatch
 * rejection, corruption detection, file round trips, and resumed
 * training equivalence (the reliability property production training
 * depends on).
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "data/dataset.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "train/checkpoint.h"
#include "util/units.h"

namespace recsim::train {
namespace {

model::DlrmConfig
tinyConfig()
{
    return model::DlrmConfig::tinyReplica(4, 8, 200, 8);
}

data::SyntheticCtrDataset
tinyDataset()
{
    const auto cfg = tinyConfig();
    data::DatasetConfig ds;
    ds.num_dense = cfg.num_dense;
    ds.sparse = cfg.sparse;
    ds.seed = 17;
    return data::SyntheticCtrDataset(ds);
}

TEST(Checkpoint, RoundTripIsBitExact)
{
    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm b(tinyConfig(), 2);  // different init

    const auto buffer = saveCheckpoint(a);
    const auto status = restoreCheckpoint(b, buffer);
    ASSERT_TRUE(status.ok) << status.error;

    auto pa = a.denseParams();
    auto pb = b.denseParams();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(tensor::maxAbsDiff(*pa[i], *pb[i]), 0.0);
    for (std::size_t f = 0; f < a.tables().size(); ++f) {
        EXPECT_EQ(tensor::maxAbsDiff(a.tables()[f].table,
                                     b.tables()[f].table),
                  0.0);
    }
}

TEST(Checkpoint, RestoredModelPredictsIdentically)
{
    auto ds = tinyDataset();
    const auto batch = ds.nextBatch(16);

    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm b(tinyConfig(), 99);
    const auto buffer = saveCheckpoint(a);
    ASSERT_TRUE(restoreCheckpoint(b, buffer).ok);

    tensor::Tensor la, lb;
    a.forward(batch, la);
    b.forward(batch, lb);
    EXPECT_EQ(tensor::maxAbsDiff(la, lb), 0.0);
}

TEST(Checkpoint, ResumedTrainingMatchesUninterrupted)
{
    auto ds = tinyDataset();
    ds.materialize(4096);

    auto run = [&](bool interrupt) {
        model::Dlrm model(tinyConfig(), 5);
        nn::Sgd opt(0.05f);
        std::vector<uint8_t> snapshot;
        for (std::size_t i = 0; i < 40; ++i) {
            if (interrupt && i == 20) {
                // Simulate preemption: checkpoint, destroy, restore.
                snapshot = saveCheckpoint(model);
                model::Dlrm fresh(tinyConfig(), 1234);
                EXPECT_TRUE(restoreCheckpoint(fresh, snapshot).ok);
                // Continue on the restored replica via a swap of
                // parameters back into `model`.
                const auto buffer = saveCheckpoint(fresh);
                EXPECT_TRUE(restoreCheckpoint(model, buffer).ok);
            }
            const auto batch = ds.epochBatch(i * 64, 64);
            model.forwardBackward(batch);
            model.step(opt);
        }
        tensor::Tensor logits;
        const auto eval = ds.epochBatch(3000, 256);
        model.forward(eval, logits);
        return logits;
    };

    const auto uninterrupted = run(false);
    const auto resumed = run(true);
    EXPECT_EQ(tensor::maxAbsDiff(uninterrupted, resumed), 0.0);
}

TEST(Checkpoint, RejectsShapeMismatch)
{
    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm wrong(model::DlrmConfig::tinyReplica(4, 8, 300, 8), 1);
    const auto buffer = saveCheckpoint(a);
    const auto status = restoreCheckpoint(wrong, buffer);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("architecture"), std::string::npos);
}

TEST(Checkpoint, RejectsCorruptedBuffers)
{
    model::Dlrm a(tinyConfig(), 1);
    auto buffer = saveCheckpoint(a);

    auto truncated = buffer;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(restoreCheckpoint(a, truncated).ok);

    auto bad_magic = buffer;
    bad_magic[0] ^= 0xff;
    EXPECT_FALSE(restoreCheckpoint(a, bad_magic).ok);

    auto trailing = buffer;
    trailing.push_back(0);
    EXPECT_FALSE(restoreCheckpoint(a, trailing).ok);
}

TEST(Checkpoint, FileRoundTrip)
{
    const std::string path = "/tmp/recsim_ckpt_test.bin";
    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm b(tinyConfig(), 2);
    ASSERT_TRUE(saveCheckpointFile(a, path));
    const auto status = restoreCheckpointFile(b, path);
    EXPECT_TRUE(status.ok) << status.error;
    for (std::size_t f = 0; f < a.tables().size(); ++f) {
        EXPECT_EQ(tensor::maxAbsDiff(a.tables()[f].table,
                                     b.tables()[f].table),
                  0.0);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReportsError)
{
    model::Dlrm a(tinyConfig(), 1);
    const auto status =
        restoreCheckpointFile(a, "/nonexistent/checkpoint.bin");
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("open"), std::string::npos);
}

TEST(Checkpoint, SizeEstimateMatchesActualForSmallModels)
{
    const auto cfg = tinyConfig();
    model::Dlrm model(cfg, 1);
    const auto buffer = saveCheckpoint(model);
    EXPECT_NEAR(static_cast<double>(buffer.size()),
                checkpointBytes(cfg),
                checkpointBytes(cfg) * 0.01 + 64.0);
}

TEST(Checkpoint, ProductionScaleEstimates)
{
    // M3's checkpoint is dominated by its ~120 GB of tables — the
    // capacity-planning number the reliability papers care about.
    const double m3 = checkpointBytes(model::DlrmConfig::m3Prod());
    EXPECT_GT(m3, 100.0 * util::kGB);
    EXPECT_LT(m3, 200.0 * util::kGB);
}

} // namespace
} // namespace recsim::train
