/**
 * @file
 * Tests for model checkpointing: bit-exact save/restore, shape-mismatch
 * rejection, corruption detection, file round trips, and resumed
 * training equivalence (the reliability property production training
 * depends on).
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "data/dataset.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "train/checkpoint.h"
#include "util/units.h"

namespace recsim::train {
namespace {

model::DlrmConfig
tinyConfig()
{
    return model::DlrmConfig::tinyReplica(4, 8, 200, 8);
}

data::SyntheticCtrDataset
tinyDataset()
{
    const auto cfg = tinyConfig();
    data::DatasetConfig ds;
    ds.num_dense = cfg.num_dense;
    ds.sparse = cfg.sparse;
    ds.seed = 17;
    return data::SyntheticCtrDataset(ds);
}

TEST(Checkpoint, RoundTripIsBitExact)
{
    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm b(tinyConfig(), 2);  // different init

    const auto buffer = saveCheckpoint(a);
    const auto status = restoreCheckpoint(b, buffer);
    ASSERT_TRUE(status.ok) << status.error;

    auto pa = a.denseParams();
    auto pb = b.denseParams();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(tensor::maxAbsDiff(*pa[i], *pb[i]), 0.0);
    for (std::size_t f = 0; f < a.tables().size(); ++f) {
        EXPECT_EQ(tensor::maxAbsDiff(a.tables()[f].table,
                                     b.tables()[f].table),
                  0.0);
    }
}

TEST(Checkpoint, RestoredModelPredictsIdentically)
{
    auto ds = tinyDataset();
    const auto batch = ds.nextBatch(16);

    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm b(tinyConfig(), 99);
    const auto buffer = saveCheckpoint(a);
    ASSERT_TRUE(restoreCheckpoint(b, buffer).ok);

    tensor::Tensor la, lb;
    a.forward(batch, la);
    b.forward(batch, lb);
    EXPECT_EQ(tensor::maxAbsDiff(la, lb), 0.0);
}

TEST(Checkpoint, ResumedTrainingMatchesUninterrupted)
{
    auto ds = tinyDataset();
    ds.materialize(4096);

    auto run = [&](bool interrupt) {
        model::Dlrm model(tinyConfig(), 5);
        nn::Sgd opt(0.05f);
        std::vector<uint8_t> snapshot;
        for (std::size_t i = 0; i < 40; ++i) {
            if (interrupt && i == 20) {
                // Simulate preemption: checkpoint, destroy, restore.
                snapshot = saveCheckpoint(model);
                model::Dlrm fresh(tinyConfig(), 1234);
                EXPECT_TRUE(restoreCheckpoint(fresh, snapshot).ok);
                // Continue on the restored replica via a swap of
                // parameters back into `model`.
                const auto buffer = saveCheckpoint(fresh);
                EXPECT_TRUE(restoreCheckpoint(model, buffer).ok);
            }
            const auto batch = ds.epochBatch(i * 64, 64);
            model.forwardBackward(batch);
            model.step(opt);
        }
        tensor::Tensor logits;
        const auto eval = ds.epochBatch(3000, 256);
        model.forward(eval, logits);
        return logits;
    };

    const auto uninterrupted = run(false);
    const auto resumed = run(true);
    EXPECT_EQ(tensor::maxAbsDiff(uninterrupted, resumed), 0.0);
}

TEST(Checkpoint, RejectsShapeMismatch)
{
    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm wrong(model::DlrmConfig::tinyReplica(4, 8, 300, 8), 1);
    const auto buffer = saveCheckpoint(a);
    const auto status = restoreCheckpoint(wrong, buffer);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("architecture"), std::string::npos);
}

TEST(Checkpoint, RejectsCorruptedBuffers)
{
    model::Dlrm a(tinyConfig(), 1);
    auto buffer = saveCheckpoint(a);

    auto truncated = buffer;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(restoreCheckpoint(a, truncated).ok);

    auto bad_magic = buffer;
    bad_magic[0] ^= 0xff;
    EXPECT_FALSE(restoreCheckpoint(a, bad_magic).ok);

    auto trailing = buffer;
    trailing.push_back(0);
    EXPECT_FALSE(restoreCheckpoint(a, trailing).ok);
}

TEST(Checkpoint, RejectsCorruptedVersionAndSignature)
{
    model::Dlrm a(tinyConfig(), 1);
    const auto buffer = saveCheckpoint(a);

    // Layout: magic u32 | version u32 | signature u64 | ...
    auto bad_version = buffer;
    bad_version[4] = 0x7f;
    const auto version_status = restoreCheckpoint(a, bad_version);
    EXPECT_FALSE(version_status.ok);
    EXPECT_NE(version_status.error.find("version"), std::string::npos);

    auto bad_signature = buffer;
    bad_signature[11] ^= 0xff;
    const auto sig_status = restoreCheckpoint(a, bad_signature);
    EXPECT_FALSE(sig_status.ok);
    EXPECT_NE(sig_status.error.find("architecture"), std::string::npos);

    // A model must survive a failed restore attempt: params were
    // rejected before any payload was applied.
    EXPECT_TRUE(restoreCheckpoint(a, buffer).ok);
}

TEST(Checkpoint, FileRoundTrip)
{
    const std::string path = "/tmp/recsim_ckpt_test.bin";
    model::Dlrm a(tinyConfig(), 1);
    model::Dlrm b(tinyConfig(), 2);
    ASSERT_TRUE(saveCheckpointFile(a, path));
    const auto status = restoreCheckpointFile(b, path);
    EXPECT_TRUE(status.ok) << status.error;
    for (std::size_t f = 0; f < a.tables().size(); ++f) {
        EXPECT_EQ(tensor::maxAbsDiff(a.tables()[f].table,
                                     b.tables()[f].table),
                  0.0);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReportsError)
{
    model::Dlrm a(tinyConfig(), 1);
    const auto status =
        restoreCheckpointFile(a, "/nonexistent/checkpoint.bin");
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("open"), std::string::npos);
}

TEST(Checkpoint, SizeEstimateMatchesActualForSmallModels)
{
    const auto cfg = tinyConfig();
    model::Dlrm model(cfg, 1);
    const auto buffer = saveCheckpoint(model);
    EXPECT_NEAR(static_cast<double>(buffer.size()),
                checkpointBytes(cfg),
                checkpointBytes(cfg) * 0.01 + 64.0);
}

TEST(Checkpoint, ProductionScaleEstimates)
{
    // M3's checkpoint is dominated by its ~120 GB of tables — the
    // capacity-planning number the reliability papers care about.
    const double m3 = checkpointBytes(model::DlrmConfig::m3Prod());
    EXPECT_GT(m3, 100.0 * util::kGB);
    EXPECT_LT(m3, 200.0 * util::kGB);
}

// ---------------------------------------------------------------------
// Optimizer (Adagrad) state in checkpoints — format v2
// ---------------------------------------------------------------------

TEST(CheckpointAdagrad, OptimizerStateRoundTripsBitExact)
{
    auto ds = tinyDataset();
    ds.materialize(2048);

    model::Dlrm a(tinyConfig(), 1);
    nn::Adagrad a_opt(0.05f);
    for (std::size_t i = 0; i < 10; ++i) {
        a.forwardBackward(ds.epochBatch(i * 64, 64));
        a.step(a_opt);
    }

    const auto buffer = saveCheckpoint(a, &a_opt);

    model::Dlrm b(tinyConfig(), 77);
    nn::Adagrad b_opt(0.05f);
    const auto status = restoreCheckpoint(b, buffer, &b_opt);
    ASSERT_TRUE(status.ok) << status.error;

    const auto pa = a.denseParams();
    const auto pb = b.denseParams();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(tensor::maxAbsDiff(*pa[i], *pb[i]), 0.0);
        const auto sa = a_opt.denseState(*pa[i]);
        const auto sb = b_opt.denseState(*pb[i]);
        EXPECT_FALSE(sa.empty());  // training touched every dense param
        EXPECT_EQ(sa, sb) << "dense accumulator " << i;
    }
    for (std::size_t f = 0; f < a.tables().size(); ++f) {
        EXPECT_EQ(a_opt.rowState(a.tables()[f]),
                  b_opt.rowState(b.tables()[f]))
            << "row accumulator " << f;
    }
}

TEST(CheckpointAdagrad, ResumedTrainingMatchesUninterrupted)
{
    auto ds = tinyDataset();
    ds.materialize(4096);

    auto run = [&](bool interrupt, bool restore_optimizer) {
        model::Dlrm model(tinyConfig(), 5);
        auto opt = std::make_unique<nn::Adagrad>(0.05f);
        for (std::size_t i = 0; i < 40; ++i) {
            if (interrupt && i == 20) {
                // Preemption: checkpoint params + accumulators, lose
                // the live optimizer, clobber a parameter, restore.
                const auto snapshot =
                    saveCheckpoint(model, opt.get());
                opt = std::make_unique<nn::Adagrad>(0.05f);
                model.denseParams()[0]->fill(0.0f);
                const auto status = restoreCheckpoint(
                    model, snapshot,
                    restore_optimizer ? opt.get() : nullptr);
                EXPECT_TRUE(status.ok) << status.error;
            }
            model.forwardBackward(ds.epochBatch(i * 64, 64));
            model.step(*opt);
        }
        tensor::Tensor logits;
        model.forward(ds.epochBatch(3000, 256), logits);
        return logits;
    };

    const auto uninterrupted = run(false, true);
    const auto resumed = run(true, true);
    EXPECT_EQ(tensor::maxAbsDiff(uninterrupted, resumed), 0.0);

    // Dropping the accumulators must visibly change the trajectory —
    // proof that the v2 payload carries real state, not padding.
    const auto amnesiac = run(true, false);
    EXPECT_GT(tensor::maxAbsDiff(uninterrupted, amnesiac), 0.0);
}

TEST(CheckpointAdagrad, StatelessCheckpointResetsAccumulators)
{
    auto ds = tinyDataset();
    ds.materialize(1024);

    model::Dlrm model(tinyConfig(), 1);
    nn::Adagrad opt(0.05f);
    model.forwardBackward(ds.epochBatch(0, 64));
    model.step(opt);
    const auto stateless = saveCheckpoint(model);  // no optimizer

    ASSERT_FALSE(opt.denseState(*model.denseParams()[0]).empty());
    ASSERT_TRUE(restoreCheckpoint(model, stateless, &opt).ok);
    EXPECT_TRUE(opt.denseState(*model.denseParams()[0]).empty());
    EXPECT_TRUE(opt.rowState(model.tables()[0]).empty());
}

TEST(CheckpointAdagrad, RejectsTruncatedOptimizerState)
{
    auto ds = tinyDataset();
    ds.materialize(1024);

    model::Dlrm model(tinyConfig(), 1);
    nn::Adagrad opt(0.05f);
    model.forwardBackward(ds.epochBatch(0, 64));
    model.step(opt);

    const auto full = saveCheckpoint(model, &opt);
    const auto bare = saveCheckpoint(model);
    ASSERT_GT(full.size(), bare.size());

    // Cut inside the optimizer section (params intact).
    auto truncated = full;
    truncated.resize(bare.size() + (full.size() - bare.size()) / 2);
    const auto status = restoreCheckpoint(model, truncated, &opt);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("optimizer"), std::string::npos);
}

TEST(CheckpointAdagrad, FileRoundTripCarriesState)
{
    const std::string path = "/tmp/recsim_ckpt_adagrad_test.bin";
    auto ds = tinyDataset();
    ds.materialize(1024);

    model::Dlrm a(tinyConfig(), 1);
    nn::Adagrad a_opt(0.05f);
    a.forwardBackward(ds.epochBatch(0, 64));
    a.step(a_opt);
    ASSERT_TRUE(saveCheckpointFile(a, path, &a_opt));

    model::Dlrm b(tinyConfig(), 2);
    nn::Adagrad b_opt(0.05f);
    const auto status = restoreCheckpointFile(b, path, &b_opt);
    EXPECT_TRUE(status.ok) << status.error;
    EXPECT_EQ(a_opt.denseState(*a.denseParams()[0]),
              b_opt.denseState(*b.denseParams()[0]));
    std::remove(path.c_str());
}

} // namespace
} // namespace recsim::train
