/**
 * @file
 * Tests for the fleet studies behind Figs 2, 5 and 9.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "fleet/fleet_sim.h"
#include "fleet/workload.h"
#include "util/random.h"

namespace recsim::fleet {
namespace {

TEST(Workloads, RecommendationTrainsMostFrequently)
{
    const auto classes = defaultWorkloads();
    double rec = 0.0, other = 0.0;
    for (const auto& cls : classes) {
        if (cls.family == ModelFamily::Recommendation)
            rec = std::max(rec, cls.runs_per_day);
        else
            other = std::max(other, cls.runs_per_day);
    }
    // Fig 2: recommendation is the most frequently trained by far.
    EXPECT_GT(rec, 5.0 * other);
}

TEST(Workloads, SampleCountsMatchRates)
{
    util::Rng rng(1);
    const auto classes = defaultWorkloads();
    const double days = 30.0;
    const auto runs = sampleFleet(classes, days, rng);
    std::map<std::string, int> counts;
    for (const auto& run : runs)
        ++counts[run.workload];
    for (const auto& cls : classes) {
        const double expected = cls.runs_per_day * days;
        EXPECT_NEAR(counts[cls.name], expected,
                    5.0 * std::sqrt(expected) + 3.0)
            << cls.name;
    }
}

TEST(Workloads, RunsFallInsideHorizon)
{
    util::Rng rng(2);
    const auto runs = sampleFleet(defaultWorkloads(), 7.0, rng);
    for (const auto& run : runs) {
        EXPECT_GE(run.day, 0.0);
        EXPECT_LE(run.day, 7.0);
        EXPECT_GT(run.duration_hours, 0.0);
    }
}

TEST(Workloads, DurationsHaveExpectedMean)
{
    util::Rng rng(3);
    const auto classes = defaultWorkloads();
    const auto runs = sampleFleet(classes, 365.0, rng);
    std::map<std::string, std::pair<double, int>> stats;
    for (const auto& run : runs) {
        stats[run.workload].first += run.duration_hours;
        stats[run.workload].second += 1;
    }
    for (const auto& cls : classes) {
        const auto& [sum, n] = stats[cls.name];
        ASSERT_GT(n, 0) << cls.name;
        EXPECT_NEAR(sum / n, cls.mean_duration_hours,
                    cls.mean_duration_hours * 0.2)
            << cls.name;
    }
}

TEST(Workloads, GrowthReaches7xAt18Months)
{
    EXPECT_NEAR(recommendationGrowth(10.0, 18.0), 70.0, 0.5);
    EXPECT_NEAR(recommendationGrowth(10.0, 0.0), 10.0, 1e-9);
}

TEST(UtilizationStudy, ProducesAllResourceDistributions)
{
    UtilizationStudyConfig cfg;
    cfg.num_runs = 120;
    const auto dists = utilizationStudy(cfg);
    for (const char* key :
         {"trainer_cpu", "trainer_mem_bw", "trainer_mem_capacity",
          "trainer_network", "ps_cpu", "ps_mem_bw", "ps_mem_capacity",
          "ps_network"}) {
        ASSERT_TRUE(dists.count(key)) << key;
        EXPECT_GT(dists.at(key).size(), 100u) << key;
        const auto s = dists.at(key).summarize();
        EXPECT_GE(s.min, 0.0) << key;
        EXPECT_LE(s.max, 1.0) << key;
    }
}

TEST(UtilizationStudy, TrainersHotterThanParameterServers)
{
    // Fig 5: trainer servers run at high utilization with small
    // variation; parameter servers are cooler with a wider spread.
    UtilizationStudyConfig cfg;
    cfg.num_runs = 200;
    const auto dists = utilizationStudy(cfg);
    EXPECT_GT(dists.at("trainer_cpu").mean(),
              dists.at("ps_cpu").mean());
    const double trainer_cv = dists.at("trainer_cpu").stddev() /
        dists.at("trainer_cpu").mean();
    const double ps_cv = dists.at("ps_cpu").stddev() /
        dists.at("ps_cpu").mean();
    EXPECT_GT(ps_cv, trainer_cv);
}

TEST(UtilizationStudy, DeterministicForSeed)
{
    UtilizationStudyConfig cfg;
    cfg.num_runs = 50;
    const auto a = utilizationStudy(cfg);
    const auto b = utilizationStudy(cfg);
    EXPECT_EQ(a.at("trainer_cpu").values(),
              b.at("trainer_cpu").values());
}

TEST(UtilizationStudy, NoiseWidensDistributions)
{
    UtilizationStudyConfig quiet;
    quiet.num_runs = 150;
    quiet.system_noise_sigma = 0.0;
    quiet.config_jitter = 0.0;
    UtilizationStudyConfig noisy = quiet;
    noisy.system_noise_sigma = 0.3;
    noisy.config_jitter = 0.3;
    const auto a = utilizationStudy(quiet);
    const auto b = utilizationStudy(noisy);
    EXPECT_GT(b.at("trainer_cpu").stddev(),
              a.at("trainer_cpu").stddev());
}

TEST(ServerCountStudy, ModalTrainerFractionHolds)
{
    ServerCountStudyConfig cfg;
    cfg.num_workflows = 3000;
    const auto dists = serverCountStudy(cfg);
    ASSERT_EQ(dists.trainers.size(), 3000u);
    std::size_t modal = 0;
    for (double v : dists.trainers.values())
        modal += v == static_cast<double>(cfg.modal_trainers);
    // "over 40% of the workflows using same number of trainers"
    const double fraction =
        static_cast<double>(modal) / 3000.0;
    EXPECT_GT(fraction, 0.40);
    EXPECT_LT(fraction, 0.60);
}

TEST(ServerCountStudy, PsCountsVaryMoreThanTrainers)
{
    ServerCountStudyConfig cfg;
    cfg.num_workflows = 3000;
    const auto dists = serverCountStudy(cfg);
    const double trainer_cv =
        dists.trainers.stddev() / dists.trainers.mean();
    const double ps_cv = dists.parameter_servers.stddev() /
        dists.parameter_servers.mean();
    // Fig 9: "In contrast to number of trainers, number of parameter
    // servers vary greatly."
    EXPECT_GT(ps_cv, trainer_cv);
}

TEST(ServerCountStudy, CountsArePositiveIntegers)
{
    ServerCountStudyConfig cfg;
    cfg.num_workflows = 500;
    const auto dists = serverCountStudy(cfg);
    for (double v : dists.trainers.values()) {
        EXPECT_GE(v, 1.0);
        EXPECT_DOUBLE_EQ(v, std::floor(v));
    }
    for (double v : dists.parameter_servers.values()) {
        EXPECT_GE(v, 1.0);
        EXPECT_DOUBLE_EQ(v, std::floor(v));
    }
}

} // namespace
} // namespace recsim::fleet
