/**
 * @file
 * Extension: embedding-table quantization ("compression for these large
 * embedding tables using quantization [17]", Section III-A).
 *
 * Part 1 (system): serving the tables at fp16/int8 shrinks capacity and
 * lookup bandwidth — enough to fit M3_prod on a single Big Basin's GPU
 * memory, turning the paper's worst case (remote placement, 0.67x of
 * CPU) into a win.
 *
 * Part 2 (model quality, functional): quantize a trained DLRM's tables
 * and measure the NE/accuracy cost on held-out data with the real
 * QuantizedEmbeddingBag.
 */
#include <iostream>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "model/dlrm.h"
#include "nn/loss.h"
#include "nn/quantized_embedding.h"
#include "train/trainer.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Extension: quantization",
                  "Embedding compression (paper Sec III-A opportunity)",
                  "System effect on M3_prod placement + functional "
                  "accuracy cost.");

    // ---- Part 1: M3 on one Big Basin across serving precisions. ----
    const auto m3 = model::DlrmConfig::m3Prod();
    util::TextTable table;
    table.header({"precision", "table bytes", "gpu_memory feasible?",
                  "throughput", "vs remote baseline"});

    auto remote = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    remote.hogwild_threads = 4;
    const double baseline =
        cost::IterationModel(m3, remote).estimate().throughput;

    for (auto precision : {nn::EmbeddingPrecision::Fp32,
                           nn::EmbeddingPrecision::Fp16,
                           nn::EmbeddingPrecision::Int8,
                           nn::EmbeddingPrecision::Int4}) {
        auto sys = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::GpuMemory, 800);
        sys.emb_bytes_per_element = nn::bytesPerElement(precision);
        const auto est = cost::IterationModel(m3, sys).estimate();
        table.row({
            nn::toString(precision),
            util::bytesToString(m3.embeddingBytes() *
                                nn::bytesPerElement(precision) / 4.0),
            est.feasible ? "yes" : "no (exceeds HBM)",
            est.feasible ? bench::kexps(est.throughput) : "-",
            est.feasible ? bench::ratio(est.throughput / baseline) : "-",
        });
    }
    std::cout << table.render();
    std::cout << "remote_ps baseline (paper's M3 setup): "
              << bench::kexps(baseline) << "\n\n";

    // ---- Part 2: functional accuracy cost of quantized serving. ----
    const auto tiny = model::DlrmConfig::tinyReplica(6, 12, 1500, 16);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = tiny.num_dense;
    ds_cfg.sparse = tiny.sparse;
    ds_cfg.seed = 99;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(20000);

    // Train an FP32 master.
    model::Dlrm dlrm(tiny, 3);
    nn::Adagrad opt(0.05f);
    for (std::size_t i = 0; i < 250; ++i) {
        const auto batch = ds.epochBatch(i * 64 % 16000, 64);
        dlrm.forwardBackward(batch);
        dlrm.step(opt);
    }
    const auto eval = ds.epochBatch(16000, 4000);

    util::TextTable quality;
    quality.header({"serving precision", "eval NE", "NE regression",
                    "accuracy", "bytes saved"});
    double fp32_ne = 0.0;
    for (auto precision : {nn::EmbeddingPrecision::Fp32,
                           nn::EmbeddingPrecision::Fp16,
                           nn::EmbeddingPrecision::Int8,
                           nn::EmbeddingPrecision::Int4}) {
        // Swap every table's forward for the quantized view.
        std::vector<nn::QuantizedEmbeddingBag> qtables;
        qtables.reserve(dlrm.tables().size());
        std::size_t fp32_bytes = 0, q_bytes = 0;
        for (const auto& t : dlrm.tables()) {
            qtables.emplace_back(t, precision);
            fp32_bytes += t.paramBytes();
            q_bytes += qtables.back().paramBytes();
        }
        // Forward pass with dequantized pooled outputs: reuse the
        // model's MLPs by temporarily overwriting pooled inputs is
        // invasive; instead round-trip the tables through the
        // quantizer (quantize -> dequantize into the live table).
        std::vector<tensor::Tensor> saved;
        saved.reserve(dlrm.tables().size());
        for (std::size_t f = 0; f < dlrm.tables().size(); ++f) {
            auto& t = dlrm.tables()[f];
            saved.push_back(t.table);
            for (std::size_t r = 0; r < t.hashSize(); ++r)
                qtables[f].dequantizeRow(r, t.table.row(r));
        }
        tensor::Tensor logits;
        dlrm.forward(eval, logits);
        const double ne = nn::normalizedEntropy(logits, eval.labels);
        const double acc = nn::accuracy(logits, eval.labels);
        if (precision == nn::EmbeddingPrecision::Fp32)
            fp32_ne = ne;
        quality.row({
            nn::toString(precision),
            util::fixed(ne, 4),
            (ne >= fp32_ne ? "+" : "") +
                util::fixed((ne - fp32_ne) / fp32_ne * 100.0, 3) + "%",
            bench::pct(acc),
            bench::pct(1.0 - static_cast<double>(q_bytes) /
                                 static_cast<double>(fp32_bytes)),
        });
        for (std::size_t f = 0; f < dlrm.tables().size(); ++f)
            dlrm.tables()[f].table = saved[f];
    }
    std::cout << quality.render() << "\n";
    std::cout <<
        "Takeaway: fp16 serving fits M3 on one Big Basin and beats the "
        "paper's remote setup\nseveral-fold, at a small measured NE "
        "cost; int8 halves the footprint again for a\nlarger (but "
        "still sub-percent) regression — quantifying the opportunity "
        "the paper\npoints at.\n";
    return 0;
}
