/**
 * @file
 * Fig 6 reproduction: hash size vs mean feature length per embedding
 * table for M1/M2/M3. Prints the scatter (binned) plus the population
 * means and the (weak) hash-length correlation the paper highlights.
 */
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"

#include "util/logging.h"
#include "model/config.h"
#include "stats/sample_set.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 6",
                  "Hash size vs mean feature length per table",
                  "Per-table (hash size, mean lookups) for the three "
                  "production model configs.");

    const model::DlrmConfig models[] = {
        model::DlrmConfig::m1Prod(),
        model::DlrmConfig::m2Prod(),
        model::DlrmConfig::m3Prod(),
    };
    const double paper_mean_hash[] = {5.7e6, 7.3e6, 3.7e6};

    for (std::size_t i = 0; i < 3; ++i) {
        const auto& m = models[i];
        std::vector<double> hashes, lengths;
        uint64_t min_hash = ~0ULL, max_hash = 0;
        for (const auto& s : m.sparse) {
            hashes.push_back(
                std::log10(static_cast<double>(s.hash_size)));
            lengths.push_back(s.mean_length);
            min_hash = std::min(min_hash, s.hash_size);
            max_hash = std::max(max_hash, s.hash_size);
        }
        double mean_hash = 0.0, mean_len = 0.0;
        for (const auto& s : m.sparse) {
            mean_hash += static_cast<double>(s.hash_size);
            mean_len += s.mean_length;
        }
        mean_hash /= static_cast<double>(m.numSparse());
        mean_len /= static_cast<double>(m.numSparse());

        std::cout << m.name << ": " << m.numSparse() << " tables\n";
        util::TextTable table;
        table.header({"metric", "generated", "paper"});
        table.row({"mean hash size", util::countToString(mean_hash),
                   util::countToString(paper_mean_hash[i])});
        table.row({"hash size range",
                   util::format("{} .. {}",
                                util::countToString(
                                    static_cast<double>(min_hash)),
                                util::countToString(
                                    static_cast<double>(max_hash))),
                   "30 .. 20M"});
        table.row({"mean feature length", util::fixed(mean_len, 1),
                   i == 0 ? "28" : i == 1 ? "17" : "49"});
        table.row({"spearman(hash, length)",
                   util::fixed(stats::spearman(hashes, lengths), 2),
                   "weakly negative"});
        std::cout << table.render();

        // Scatter rendered as a coarse character grid: rows = length
        // deciles, columns = hash-size decades.
        std::cout << "scatter (rows: mean length; cols: hash size "
                     "decade 10^1..10^8):\n";
        for (double len_lo : {100.0, 50.0, 20.0, 10.0, 5.0, 0.0}) {
            std::string line = util::padLeft(
                util::fixed(len_lo, 0) + "+ ", 6);
            for (int decade = 1; decade <= 8; ++decade) {
                int count = 0;
                for (const auto& s : m.sparse) {
                    const double log_hash = std::log10(
                        static_cast<double>(s.hash_size));
                    const bool len_ok = s.mean_length >= len_lo &&
                        (len_lo == 100.0 || s.mean_length <
                             (len_lo == 0.0 ? 5.0
                              : len_lo == 5.0 ? 10.0
                              : len_lo == 10.0 ? 20.0
                              : len_lo == 20.0 ? 50.0 : 100.0));
                    if (len_ok && log_hash >= decade &&
                        log_hash < decade + 1) {
                        ++count;
                    }
                }
                line += count == 0 ? "   ."
                    : util::padLeft(std::to_string(count), 4);
            }
            std::cout << line << "\n";
        }
        std::cout << "\n";
    }

    std::cout <<
        "Shape check (paper): hash sizes span 30..20M with the stated "
        "means; access frequency\ndoes not strongly correlate with "
        "table size — some of the most accessed tables are small.\n";
    return 0;
}
