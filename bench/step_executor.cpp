/**
 * @file
 * Step-executor benchmark with a serial-equivalence gate. Runs one
 * training step of a small DLRM two ways — the serial runGraphStep
 * walk and the dependency-aware GraphExecutor — at pool sizes 1/2/4/8,
 * verifies the executor's losses stay bitwise-identical to the serial
 * walk at every thread count, reports the graph's wavefront occupancy
 * (how many nodes each level can run concurrently), and emits
 * BENCH_step_executor.json for CI to diff and gate on. An
 * overlap-efficiency sweep over representative placements rides along:
 * critical path / serial sum of the analytical per-node times, the
 * figure the cost model now reports per config.
 *
 * A telemetry-overhead measurement rides along: the serial walk runs
 * again with the flight recorder, a rolling step-time histogram and
 * the periodic JSONL sampler all live, and the JSON reports the
 * enabled/disabled ratio CI gates at < 2% (ISSUE: the recorder must be
 * cheap enough to leave on). --telemetry PATH writes the sampler's
 * JSONL lines for the CI schema gate.
 *
 * Usage: step_executor [--json PATH] [--telemetry PATH] [--quick]
 *                      [--trace out.json]
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "graph/step_graph.h"
#include "model/dlrm.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/pool_metrics.h"
#include "stats/log_histogram.h"
#include "train/step_runner.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

using namespace recsim;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-iteration examples/s of fn (one warmup call first). */
template <typename F>
double
measureExamplesPerSec(F&& fn, double examples_per_iter,
                      double min_seconds)
{
    fn();
    double best = std::numeric_limits<double>::infinity();
    double total = 0.0;
    int iters = 0;
    while ((total < min_seconds || iters < 3) && iters < 10000) {
        const double t0 = nowSeconds();
        fn();
        const double dt = nowSeconds() - t0;
        best = std::min(best, dt);
        total += dt;
        ++iters;
    }
    return examples_per_iter / best;
}

/**
 * Train @p steps with the serial walk and with the executor (separate
 * same-seed models, same batches) and report whether every per-step
 * loss matches bitwise.
 */
bool
lossesBitwiseEqual(const model::DlrmConfig& cfg,
                   const graph::StepGraph& graph,
                   const train::GraphExecutor& executor,
                   const std::vector<data::MiniBatch>& batches)
{
    model::Dlrm serial_model(cfg, 1);
    model::Dlrm exec_model(cfg, 1);
    for (const auto& batch : batches) {
        const double a =
            train::runGraphStep(serial_model, batch, graph);
        const double b = executor.runStep(exec_model, batch);
        if (std::memcmp(&a, &b, sizeof(double)) != 0)
            return false;
        serial_model.zeroGrad();
        exec_model.zeroGrad();
    }
    return true;
}

struct ThreadResult
{
    std::size_t threads = 0;
    double examples_per_s = 0.0;
    bool loss_equal = false;
};

struct OverlapRow
{
    std::string config;
    double serial_sum_s = 0.0;
    double critical_path_s = 0.0;
    double overlap = 1.0;
};

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace(argc, argv);
    std::string json_path = "BENCH_step_executor.json";
    std::string telemetry_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg == "--telemetry" && i + 1 < argc)
            telemetry_path = argv[++i];
        else if (arg.rfind("--telemetry=", 0) == 0)
            telemetry_path = arg.substr(12);
        else if (arg == "--quick")
            quick = true;
    }
    const double min_seconds = quick ? 0.05 : 0.25;
    const std::size_t batch = quick ? 64 : 256;
    const std::size_t check_steps = quick ? 4 : 8;

    bench::banner("Step executor", "Inter-op parallelism over the "
                  "StepGraph",
                  "Serial walk vs dependency-aware executor at pool "
                  "sizes 1/2/4/8; results must\nstay bit-identical at "
                  "every thread count (gated in CI).");

    // Mixed dimensions give the graph projection nodes, so the waves
    // exercise emb -> proj chains alongside independent tables.
    const auto cfg = model::applyMixedDimensions(
        model::DlrmConfig::tinyReplica(8, 13, 2000, 16), 0.5, 4);
    const graph::StepGraph graph = graph::buildModelStepGraph(cfg);
    const train::GraphExecutor executor(graph);

    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    data::SyntheticCtrDataset ds(ds_cfg);
    const auto mb = ds.nextBatch(batch);
    std::vector<data::MiniBatch> check_batches;
    for (std::size_t i = 0; i < check_steps; ++i)
        check_batches.push_back(ds.nextBatch(batch));

    // Wavefront occupancy: how wide each level of the schedule is.
    std::size_t max_width = 0, total_nodes = 0;
    for (const auto& wave : executor.forwardWaves()) {
        max_width = std::max(max_width, wave.size());
        total_nodes += wave.size();
    }
    const double mean_width = executor.forwardWaves().empty()
        ? 0.0
        : static_cast<double>(total_nodes) /
            static_cast<double>(executor.forwardWaves().size());
    std::cout << util::format(
        "graph: {} nodes, {} forward waves (max width {}, mean {}), "
        "{} backward waves\n\n",
        graph.numNodes(), executor.forwardWaves().size(), max_width,
        util::fixed(mean_width, 2), executor.backwardWaves().size());

    // Serial reference at a 1-thread pool.
    auto& pool = util::globalThreadPool();
    model::Dlrm serial_model(cfg, 1);
    pool.resize(1);
    const double serial_eps = measureExamplesPerSec(
        [&] {
            train::runGraphStep(serial_model, mb, graph);
            serial_model.zeroGrad();
        },
        static_cast<double>(batch), min_seconds);
    std::cout << util::format("serial walk      {} examples/s\n",
                              bench::kexps(serial_eps));

    const obs::PoolSnapshot sweep_before = obs::snapshotThreadPool();
    std::vector<ThreadResult> results;
    for (const std::size_t t : {std::size_t(1), std::size_t(2),
                                std::size_t(4), std::size_t(8)}) {
        pool.resize(t);
        ThreadResult r;
        r.threads = t;
        model::Dlrm exec_model(cfg, 1);
        r.examples_per_s = measureExamplesPerSec(
            [&] {
                executor.runStep(exec_model, mb);
                exec_model.zeroGrad();
            },
            static_cast<double>(batch), min_seconds);
        r.loss_equal =
            lossesBitwiseEqual(cfg, graph, executor, check_batches);
        results.push_back(r);
        std::cout << util::format(
            "executor {}t      {} examples/s  (vs serial {})  "
            "loss bitwise {}\n",
            t, bench::kexps(r.examples_per_s),
            bench::ratio(r.examples_per_s / serial_eps),
            r.loss_equal ? "EQUAL" : "DIFFERS");
    }
    pool.resize(1);

    // What the sweep itself cost the pool, published as gauges under
    // bench.step_executor.pool.* (the snapshot/delta API).
    const obs::PoolSnapshot sweep_delta =
        obs::poolDelta(sweep_before, obs::snapshotThreadPool());
    obs::publishThreadPoolMetrics("bench.step_executor.pool",
                                  sweep_delta);
    std::cout << util::format(
        "\npool during sweep: {} jobs, {} tasks\n", sweep_delta.jobs,
        sweep_delta.tasks);

    // Overlap-efficiency sweep: how much of the per-node serial sum
    // the graph edges hide for representative placements.
    std::vector<OverlapRow> overlap_rows;
    {
        using placement::EmbeddingPlacement;
        auto add = [&overlap_rows](const std::string& label,
                                   const model::DlrmConfig& m,
                                   const cost::SystemConfig& sys) {
            const auto est = cost::IterationModel(m, sys).estimate();
            if (!est.feasible)
                return;
            overlap_rows.push_back({label, est.serial_sum_seconds,
                                    est.critical_path_seconds,
                                    est.overlap_efficiency});
        };
        const auto m = model::DlrmConfig::testSuite(256, 32, 100000);
        add("cpu t1 ps2", m,
            cost::SystemConfig::cpuSetup(1, 2, 1, 200, 1));
        add("cpu t4 ps8", m,
            cost::SystemConfig::cpuSetup(4, 8, 2, 200, 1));
        add("bb gpu_memory", m,
            cost::SystemConfig::bigBasinSetup(
                EmbeddingPlacement::GpuMemory, 1600));
        add("bb remote_ps", m,
            cost::SystemConfig::bigBasinSetup(
                EmbeddingPlacement::RemotePs, 1600, 4));
        std::cout << "\noverlap efficiency (critical path / serial "
                     "node sum, lower = more comm hidden):\n";
        for (const auto& row : overlap_rows) {
            std::cout << util::format("  {}  {}\n",
                                      util::padRight(row.config, 16),
                                      util::fixed(row.overlap, 3));
        }
    }

    // Telemetry overhead: the same serial walk with the whole
    // observability pipeline live — the flight recorder sampling every
    // node dispatch, a rolling step-time histogram fed each step, and
    // the periodic sampler emitting JSONL in the background — vs the
    // disabled path (one relaxed load per site). CI gates the ratio
    // at < 2%.
    double telemetry_off_eps = 0.0, telemetry_on_eps = 0.0;
    double telemetry_paired_overhead = 1.0;
    std::size_t sampler_lines = 0;
    uint64_t recorder_samples = 0;
    {
        model::Dlrm tm(cfg, 1);
        // The instrumentation cost is per node visit while the node
        // work scales with the batch, so the overhead ratio is only
        // comparable at a fixed batch size: pin it to the full-mode
        // batch even under --quick.
        const std::size_t telemetry_batch = 256;
        const auto telemetry_mb = ds.nextBatch(telemetry_batch);
        auto& recorder = obs::FlightRecorder::global();
        recorder.configure(1 << 16);
        stats::WindowedHistogram step_hist(0.25);
        obs::PeriodicSampler::Config sampler_cfg;
        sampler_cfg.interval_s = 0.1;
        sampler_cfg.latency = &step_hist;
        sampler_cfg.jsonl_path = telemetry_path;
        obs::PeriodicSampler sampler(sampler_cfg);
        const double origin = nowSeconds();

        // Machine speed drifts (shared runners, frequency scaling), so
        // any measurement that runs one mode for a stretch and then the
        // other confounds the telemetry cost with whatever the machine
        // did in between. Interleave at the single-iteration level:
        // each round runs one disabled and one enabled step back to
        // back and keeps each mode's best iteration time, so both
        // modes sample the same speed distribution and the ratio
        // isolates the instrumentation. The sampler thread runs
        // throughout and taxes both modes alike.
        const double telemetry_seconds = std::max(4.0 * min_seconds, 0.6);
        sampler.start();
        double best_off = std::numeric_limits<double>::infinity();
        double best_on = best_off;
        double total = 0.0;
        std::vector<double> paired_ratios;
        for (int round = 0;
             (total < telemetry_seconds || round < 64) && round < 20000;
             ++round) {
            recorder.setEnabled(false);
            double t0 = nowSeconds();
            train::runGraphStep(tm, telemetry_mb, graph);
            tm.zeroGrad();
            const double dt_off = nowSeconds() - t0;
            total += dt_off;
            recorder.setEnabled(true);
            t0 = nowSeconds();
            train::runGraphStep(tm, telemetry_mb, graph);
            tm.zeroGrad();
            const double dt_on = nowSeconds() - t0;
            step_hist.add(t0 - origin, dt_on);
            total += dt_on;
            if (round == 0)
                continue; // warmup: both paths touch cold caches
            best_off = std::min(best_off, dt_off);
            best_on = std::min(best_on, dt_on);
            paired_ratios.push_back(dt_on / dt_off);
        }
        sampler.stop();
        telemetry_off_eps =
            static_cast<double>(telemetry_batch) / best_off;
        telemetry_on_eps =
            static_cast<double>(telemetry_batch) / best_on;
        // Median of the per-round enabled/disabled ratios: a spike in
        // any single iteration moves one sample, never the estimate.
        std::nth_element(paired_ratios.begin(),
                         paired_ratios.begin() +
                             paired_ratios.size() / 2,
                         paired_ratios.end());
        telemetry_paired_overhead =
            paired_ratios[paired_ratios.size() / 2];
        sampler_lines = sampler.lines().size();
        recorder_samples = recorder.totalRecorded();
        recorder.setEnabled(false);
        recorder.reset();
    }
    std::cout << util::format(
        "telemetry: serial {} examples/s disabled, {} enabled "
        "(overhead x{} paired-median), {} recorder samples, "
        "{} sampler lines\n",
        bench::kexps(telemetry_off_eps), bench::kexps(telemetry_on_eps),
        util::fixed(telemetry_paired_overhead, 4), recorder_samples,
        sampler_lines);
    if (!telemetry_path.empty())
        std::cout << "wrote " << telemetry_path << "\n";

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n";
    out << "  \"threads\": " << util::configuredThreads() << ",\n";
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"graph_nodes\": " << graph.numNodes() << ",\n";
    out << "  \"forward_wave_widths\": [";
    for (std::size_t i = 0; i < executor.forwardWaves().size(); ++i) {
        out << (i ? ", " : "") << executor.forwardWaves()[i].size();
    }
    out << "],\n";
    out << "  \"backward_wave_widths\": [";
    for (std::size_t i = 0; i < executor.backwardWaves().size(); ++i) {
        out << (i ? ", " : "") << executor.backwardWaves()[i].size();
    }
    out << "],\n";
    out << "  \"serial_examples_per_s\": " << serial_eps << ",\n";
    out << "  \"executor\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        out << "    {\"threads\": " << r.threads
            << ", \"examples_per_s\": " << r.examples_per_s
            << ", \"speedup\": "
            << (serial_eps > 0.0 ? r.examples_per_s / serial_eps : 0.0)
            << ", \"loss_equal\": "
            << (r.loss_equal ? "true" : "false") << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"telemetry\": {\n"
        << "    \"disabled_examples_per_s\": " << telemetry_off_eps
        << ",\n"
        << "    \"enabled_examples_per_s\": " << telemetry_on_eps
        << ",\n"
        << "    \"overhead_ratio\": " << telemetry_paired_overhead << ",\n"
        << "    \"recorder_samples\": " << recorder_samples << ",\n"
        << "    \"sampler_lines\": " << sampler_lines << ",\n"
        << "    \"pool_sweep_jobs\": " << sweep_delta.jobs << ",\n"
        << "    \"pool_sweep_tasks\": " << sweep_delta.tasks << "\n"
        << "  },\n";
    out << "  \"overlap\": [\n";
    for (std::size_t i = 0; i < overlap_rows.size(); ++i) {
        const auto& row = overlap_rows[i];
        out << "    {\"config\": \"" << row.config
            << "\", \"serial_sum_s\": " << row.serial_sum_s
            << ", \"critical_path_s\": " << row.critical_path_s
            << ", \"overlap_efficiency\": " << row.overlap << "}"
            << (i + 1 < overlap_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return 0;
}
