/**
 * @file
 * Capstone validation of the StepGraph contract ("one iteration, one
 * source of truth"): three independent executions of the same per-step
 * operator graph report time under the same node ids —
 *   predicted  — IterationModel::nodeBreakdown() (closed-form rates),
 *   simulated  — the DES's DistSimResult::node_seconds (queueing),
 *   measured   — the real trainer, whose graph walk tags an obs span
 *                with every node id (train/step_runner.cc).
 * Agreement per node id is evidence that the three consumers read the
 * graph the same way; the residual gaps are the documented abstractions
 * (queueing in the DES, malloc/dispatch noise in the measurement).
 *
 * The whole pipeline runs twice, unfused and fused (graph::fusePass:
 * forward GEMM epilogue fusion, backward grad-GEMM fusion with the
 * bias grad and dReLU mask riding the GEMM sweeps, the interaction
 * flatten fusion, and per-device embedding-lookup grouping), so the
 * fusion win appears in all three columns at once — the same pass that
 * rewrites the executor's graph rewrites the cost model's and the
 * DES's.
 *
 * Usage: validation_graph_breakdown [--json PATH] [--trace out.json]
 * Emits BENCH_graph_breakdown.json for the CI artifact.
 */
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "graph/step_graph.h"
#include "obs/drift.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/dist_sim.h"
#include "train/trainer.h"
#include "util/string_utils.h"

using namespace recsim;

namespace {

constexpr std::size_t kBatch = 256;
constexpr std::size_t kSteps = 20;
constexpr std::size_t kEval = 1024;

std::string
us(double seconds)
{
    return util::fixed(seconds * 1e6, 1);
}

std::string
jsonValue(const std::map<std::string, double>& m, const std::string& id)
{
    const auto it = m.find(id);
    if (it == m.end())
        return "null";
    std::ostringstream os;
    os.precision(12);
    os << it->second;
    return os.str();
}

/** One full predicted/simulated/measured pass over one graph variant. */
struct Variant
{
    cost::IterationModel analytical;
    cost::IterationEstimate estimate;
    sim::DistSimResult simulated;
    std::map<std::string, double> predicted;
    std::map<std::string, double> measured;
    double measured_iter_seconds = 0.0;
    std::size_t measured_iters = 0;
    /** Flight-recorder samples from the measured run. */
    std::vector<obs::Sample> rec_samples;
    /** Measured-vs-predicted verdicts from those samples. */
    obs::DriftReport drift;
    /** Hot-tier hit rates (cached variant only; -1 = not applicable). */
    double predicted_hit_rate = -1.0;
    double measured_hit_rate = -1.0;
};

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Aggregate hot-tier hit rate from the CachedBackend obs counters. */
double
measuredHitRate()
{
    uint64_t hot = 0, cold = 0;
    for (const auto& [name, value] :
         obs::MetricsRegistry::global().counters()) {
        if (endsWith(name, ".cache.hot_lookups"))
            hot += value;
        else if (endsWith(name, ".cache.cold_lookups"))
            cold += value;
    }
    const uint64_t n = hot + cold;
    return n ? static_cast<double>(hot) / static_cast<double>(n) : -1.0;
}

Variant
runVariant(const model::DlrmConfig& m, const cost::SystemConfig& sys,
           const cost::CostParams& params, bool fuse, bool own_tracing,
           double hot_tier_bytes = 0.0)
{
    Variant v{cost::IterationModel(m, sys, params),
              {}, {}, {}, {}, 0.0, 0, {}, {}};
    v.estimate = v.analytical.estimate();
    for (const auto& node : v.analytical.nodeBreakdown())
        v.predicted[node.node_id] = node.seconds;

    // Simulated: the DES schedules the same (fused or not) graph nodes
    // as events; CostParams::fuse_step_graph flows through.
    sim::DistSimConfig sim_cfg;
    sim_cfg.model = m;
    sim_cfg.system = sys;
    sim_cfg.params = params;
    sim_cfg.measure_seconds = 0.5;
    v.simulated = sim::runDistSim(sim_cfg);

    // Measured: the real trainer walks the same graph; every node id
    // becomes a wall-clock span. Comm nodes have no in-process
    // counterpart and stay blank in the measured column.
    data::DatasetConfig data_cfg;
    data_cfg.num_dense = m.num_dense;
    data_cfg.sparse = m.sparse;
    data_cfg.seed = 7;
    data::SyntheticCtrDataset dataset(data_cfg);
    dataset.materialize(kSteps * kBatch + kEval);
    train::TrainConfig train_cfg;
    train_cfg.batch_size = kBatch;
    train_cfg.epochs = 1;
    train_cfg.fuse_graph = fuse;
    if (hot_tier_bytes > 0.0) {
        train_cfg.embedding_backend =
            train::EmbeddingBackendKind::Cached;
        train_cfg.hot_tier_bytes = hot_tier_bytes;
        // Refresh the hot set every batch so only the very first batch
        // gathers cold from an empty set.
        train_cfg.hot_tier_refresh_every = 1;
        v.predicted_hit_rate = v.analytical.hotTierHitFraction();
        obs::MetricsRegistry::global().reset();
    }

    obs::Tracer& tracer = obs::Tracer::global();
    if (own_tracing) {
        tracer.reset();
        tracer.setEnabled(true);
    }
    // The flight recorder captures per-node samples alongside the
    // trace spans; the drift monitor folds them against the
    // prediction column.
    obs::FlightRecorder& recorder = obs::FlightRecorder::global();
    recorder.configure(1 << 15);
    recorder.setEnabled(true);
    train::trainSingleThread(m, dataset, train_cfg, kEval);
    if (hot_tier_bytes > 0.0)
        v.measured_hit_rate = measuredHitRate();
    recorder.setEnabled(false);
    v.rec_samples = recorder.snapshot();
    recorder.reset();
    const auto tracks = tracer.snapshot();
    if (own_tracing) {
        tracer.setEnabled(false);
        tracer.reset();
    }

    obs::DriftMonitor monitor(v.predicted);
    monitor.ingest(recorder, v.rec_samples);
    v.drift = monitor.report();

    std::map<std::string, double> measured_total;
    for (const auto& track : tracks) {
        if (track.simulated)
            continue;
        for (const auto& span : track.spans) {
            measured_total[span.name] += span.seconds();
            if (span.name == "train.iteration") {
                ++v.measured_iters;
                v.measured_iter_seconds += span.seconds();
            }
        }
    }
    if (v.measured_iters > 0) {
        const auto n = static_cast<double>(v.measured_iters);
        for (const auto& node : v.analytical.stepGraph().nodes) {
            const auto it = measured_total.find(node.id);
            if (it != measured_total.end())
                v.measured[node.id] = it->second / n;
        }
        v.measured_iter_seconds /= n;
    }
    return v;
}

void
printVariantTable(const char* title, const Variant& v)
{
    std::cout << title << "\n";
    util::TextTable table;
    table.header({"node", "device", "predicted", "simulated",
                  "measured", "drift"});
    auto cell = [](const std::map<std::string, double>& column,
                   const std::string& id) {
        const auto it = column.find(id);
        return it == column.end() ? std::string("-") : us(it->second);
    };
    std::map<std::string, const obs::NodeDrift*> drift_by_id;
    for (const auto& node : v.drift.nodes)
        drift_by_id[node.node_id] = &node;
    auto drift_cell = [&drift_by_id](const std::string& id) {
        const auto it = drift_by_id.find(id);
        if (it == drift_by_id.end() || it->second->ratio == 0.0)
            return std::string("-");
        return util::fixed(it->second->ratio, 2) +
            (it->second->flagged ? " !" : "");
    };
    for (const auto& node : v.analytical.stepGraph().nodes) {
        table.row({node.id, graph::toString(node.device),
                   cell(v.predicted, node.id),
                   cell(v.simulated.node_seconds, node.id),
                   cell(v.measured, node.id), drift_cell(node.id)});
    }
    table.row({"iteration", "-", us(v.estimate.iteration_seconds),
               us(v.simulated.mean_iteration_seconds),
               us(v.measured_iter_seconds), "-"});
    std::cout << table.render() << "\n";
}

/**
 * Drift-monitor self-test: take the measured per-iteration node means
 * as the "prediction" (so every ratio is exactly 1), inject a 3x
 * slowdown into one node's recorded samples, and check the monitor
 * flags that node and only that node.
 */
struct SelfTest
{
    std::string node_id;
    bool pass = false;
    double flagged_ratio = 0.0;
    std::size_t flagged_count = 0;
};

SelfTest
driftSelfTest(const Variant& v)
{
    SelfTest st;
    std::map<std::string, double> baseline;
    uint64_t best_samples = 0;
    for (const auto& node : v.drift.nodes) {
        if (node.samples < 3)
            continue;
        baseline[node.node_id] = node.measured_mean_s;
        // Inject into the best-sampled node (ties: first in id order).
        if (node.samples > best_samples) {
            best_samples = node.samples;
            st.node_id = node.node_id;
        }
    }
    if (st.node_id.empty())
        return st;

    const obs::FlightRecorder& recorder =
        obs::FlightRecorder::global();
    const std::vector<std::string> names = recorder.channels();
    uint32_t target = 0;
    bool found = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == st.node_id) {
            target = static_cast<uint32_t>(i);
            found = true;
        }
    }
    if (!found)
        return st;

    std::vector<obs::Sample> perturbed = v.rec_samples;
    for (obs::Sample& sample : perturbed) {
        if (sample.channel == target)
            sample.value *= 3.0;
    }
    obs::DriftMonitor monitor(baseline);
    monitor.ingest(recorder, perturbed);
    const obs::DriftReport report = monitor.report();
    const auto flagged = report.flaggedNodes();
    st.flagged_count = flagged.size();
    for (const auto& node : report.nodes) {
        if (node.node_id == st.node_id)
            st.flagged_ratio = node.ratio;
    }
    st.pass = flagged.size() == 1 && flagged[0] == st.node_id;
    return st;
}

void
emitNodes(std::ofstream& out, const Variant& v)
{
    std::map<std::string, const obs::NodeDrift*> drift_by_id;
    for (const auto& node : v.drift.nodes)
        drift_by_id[node.node_id] = &node;
    const auto& nodes = v.analytical.stepGraph().nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto& node = nodes[i];
        const auto dit = drift_by_id.find(node.id);
        const obs::NodeDrift* drift =
            dit == drift_by_id.end() ? nullptr : dit->second;
        out << "    {\"id\": \"" << node.id << "\", \"kind\": \""
            << graph::toString(node.kind) << "\", \"device\": \""
            << graph::toString(node.device) << "\", \"predicted_s\": "
            << jsonValue(v.predicted, node.id) << ", \"simulated_s\": "
            << jsonValue(v.simulated.node_seconds, node.id)
            << ", \"measured_s\": " << jsonValue(v.measured, node.id)
            << ", \"drift_ratio\": ";
        if (drift != nullptr && drift->ratio != 0.0) {
            std::ostringstream os;
            os.precision(12);
            os << drift->ratio;
            out << os.str();
        } else {
            out << "null";
        }
        out << ", \"drift_flagged\": "
            << (drift != nullptr && drift->flagged ? "true" : "false")
            << ", \"hot_tier_bytes\": " << node.hot_tier_bytes
            << ", \"hot_hit_fraction\": " << node.hot_hit_fraction
            << "}" << (i + 1 < nodes.size() ? "," : "") << "\n";
    }
}

void
emitIterationSeconds(std::ofstream& out, const Variant& v)
{
    out << "{\"predicted\": " << v.estimate.iteration_seconds
        << ", \"simulated\": " << v.simulated.mean_iteration_seconds
        << ", \"measured\": " << v.measured_iter_seconds << "}";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    std::string json_path = "BENCH_graph_breakdown.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }

    bench::banner("Validation: per-node graph breakdown",
                  "StepGraph as the single source of truth",
                  "Predicted vs simulated vs measured time per StepGraph "
                  "node (us/iteration,\nsame node ids across all three "
                  "consumers), unfused and after graph::fusePass.");

    // A shape small enough to actually train in-process, on the CPU
    // distributed setup so the graph carries PS comm nodes too.
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(1, 2, 1, kBatch, 1);

    // The same per-node dispatch cost prices both variants, so the
    // fused column's win comes only from the graph rewrite: fewer
    // EmbeddingLookup nodes to dispatch and no separate bias/relu
    // passes over the GEMM outputs.
    cost::CostParams params;
    params.cpu_per_table_dispatch = 2.0e-6;
    cost::CostParams fused_params = params;
    fused_params.fuse_step_graph = true;

    // Tiered variant: a hot-tier budget covering ~30% of the planner's
    // table bytes (2 whole tables plus per-table row caches on the
    // rest), priced by the cost model/DES through
    // cost::tieredGatherBandwidth and executed by nn::CachedBackend,
    // whose measured hit rate validates the analytic prediction.
    cost::SystemConfig cached_sys = sys;
    const double hot_tier_budget = 0.3 * 1.25 * m.embeddingBytes();
    cached_sys.emb_hot_tier_bytes = hot_tier_budget;

    const bool own_tracing = !trace_session.active();
    const Variant unfused =
        runVariant(m, sys, params, false, own_tracing);
    const Variant fused =
        runVariant(m, sys, fused_params, true, own_tracing);
    const Variant cached = runVariant(m, cached_sys, params, false,
                                      own_tracing, hot_tier_budget);

    printVariantTable("unfused graph:", unfused);
    printVariantTable("fused graph (fusePass):", fused);
    printVariantTable("cached embedding backend (hot tier):", cached);

    const double hit_drift = std::abs(cached.predicted_hit_rate -
                                      cached.measured_hit_rate);
    std::cout << "hot tier: budget "
              << util::bytesToString(hot_tier_budget)
              << ", plan packs "
              << util::bytesToString(cached.analytical.plan().hot_tier_bytes)
              << "\n  hit rate: predicted "
              << bench::pct(cached.predicted_hit_rate) << " (analytic, "
              << "placement + zipfTopMass), measured "
              << bench::pct(cached.measured_hit_rate)
              << " (CachedBackend counters), drift "
              << util::fixed(hit_drift, 3) << "\n\n";

    util::TextTable cmp;
    cmp.header({"iteration", "unfused", "fused", "speedup"});
    auto speedup = [](double before, double after) {
        return after > 0.0 ? util::fixed(before / after, 3)
                           : std::string("-");
    };
    cmp.row({"predicted", us(unfused.estimate.iteration_seconds),
             us(fused.estimate.iteration_seconds),
             speedup(unfused.estimate.iteration_seconds,
                     fused.estimate.iteration_seconds)});
    cmp.row({"simulated", us(unfused.simulated.mean_iteration_seconds),
             us(fused.simulated.mean_iteration_seconds),
             speedup(unfused.simulated.mean_iteration_seconds,
                     fused.simulated.mean_iteration_seconds)});
    cmp.row({"measured", us(unfused.measured_iter_seconds),
             us(fused.measured_iter_seconds),
             speedup(unfused.measured_iter_seconds,
                     fused.measured_iter_seconds)});
    std::cout << cmp.render() << "\n";

    // The drift monitor's end-to-end self-test: with the measured
    // means as the prediction and a 3x slowdown injected into one
    // node's samples, exactly that node must flag.
    const SelfTest selftest = driftSelfTest(unfused);
    std::cout << "drift self-test: injected 3x into "
              << (selftest.node_id.empty() ? "(none)"
                                           : selftest.node_id)
              << "  ->  flagged " << selftest.flagged_count
              << " node(s), ratio "
              << util::fixed(selftest.flagged_ratio, 2) << "  ["
              << (selftest.pass ? "PASS" : "FAIL") << "]\n\n";

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n  \"config\": \"" << m.name << "\",\n"
        << "  \"batch_size\": " << kBatch << ",\n"
        << "  \"measured_iterations\": " << unfused.measured_iters
        << ",\n"
        << "  \"drift\": {\"selftest_pass\": "
        << (selftest.pass ? "true" : "false")
        << ", \"selftest_node\": \"" << selftest.node_id
        << "\", \"steps_observed\": " << unfused.drift.steps_observed
        << ", \"stragglers\": " << unfused.drift.stragglers.size()
        << ", \"worst_abs_log_ratio\": "
        << unfused.drift.worst_abs_log_ratio << "},\n"
        << "  \"iteration_seconds\": ";
    emitIterationSeconds(out, unfused);
    out << ",\n  \"fused_iteration_seconds\": ";
    emitIterationSeconds(out, fused);
    out << ",\n  \"cached\": {\"hot_tier_budget_bytes\": "
        << hot_tier_budget << ", \"plan_hot_tier_bytes\": "
        << cached.analytical.plan().hot_tier_bytes
        << ", \"summary_hot_tier_bytes\": "
        << cached.analytical.workSummary().emb_hot_tier_bytes
        << ", \"summary_hot_hit_fraction\": "
        << cached.analytical.workSummary().emb_hot_hit_fraction
        << ", \"predicted_hit_rate\": " << cached.predicted_hit_rate
        << ", \"measured_hit_rate\": " << cached.measured_hit_rate
        << ", \"hit_rate_drift\": " << hit_drift
        << ",\n    \"iteration_seconds\": ";
    emitIterationSeconds(out, cached);
    out << "},\n  \"nodes\": [\n";
    emitNodes(out, unfused);
    out << "  ],\n  \"fused_nodes\": [\n";
    emitNodes(out, fused);
    out << "  ],\n  \"cached_nodes\": [\n";
    emitNodes(out, cached);
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n\n";

    std::cout <<
        "Reading: compute rows (gemms, interaction, optimizer) line up "
        "across all three\ncolumns; comm rows exist only for the "
        "predicted/simulated distributed system.\nThe measured embedding "
        "rows run the real pooled lookups, which the cost model\nfolds "
        "into its per-lookup trainer overhead. In the fused table the "
        "per-table\nemb.* rows collapse into one emb.grouped.* row per "
        "device and the gemm and\ninteraction rows lose their forward "
        "and backward epilogue traffic (bias +\nReLU stores, bias-grad "
        "sumRows, dReLU mask, the interaction flatten buffer),\nso the "
        "fused iteration is faster in all three columns.\n";
    return 0;
}
