/**
 * @file
 * Capstone validation of the StepGraph contract ("one iteration, one
 * source of truth"): three independent executions of the same per-step
 * operator graph report time under the same node ids —
 *   predicted  — IterationModel::nodeBreakdown() (closed-form rates),
 *   simulated  — the DES's DistSimResult::node_seconds (queueing),
 *   measured   — the real trainer, whose graph walk tags an obs span
 *                with every node id (train/step_runner.cc).
 * Agreement per node id is evidence that the three consumers read the
 * graph the same way; the residual gaps are the documented abstractions
 * (queueing in the DES, malloc/dispatch noise in the measurement).
 *
 * Usage: validation_graph_breakdown [--json PATH] [--trace out.json]
 * Emits BENCH_graph_breakdown.json for the CI artifact.
 */
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "graph/step_graph.h"
#include "obs/trace.h"
#include "sim/dist_sim.h"
#include "train/trainer.h"
#include "util/string_utils.h"

using namespace recsim;

namespace {

std::string
us(double seconds)
{
    return util::fixed(seconds * 1e6, 1);
}

std::string
jsonValue(const std::map<std::string, double>& m, const std::string& id)
{
    const auto it = m.find(id);
    if (it == m.end())
        return "null";
    std::ostringstream os;
    os.precision(12);
    os << it->second;
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    std::string json_path = "BENCH_graph_breakdown.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }

    bench::banner("Validation: per-node graph breakdown",
                  "StepGraph as the single source of truth",
                  "Predicted vs simulated vs measured time per StepGraph "
                  "node (us/iteration,\nsame node ids across all three "
                  "consumers).");

    // A shape small enough to actually train in-process, on the CPU
    // distributed setup so the graph carries PS comm nodes too.
    constexpr std::size_t kBatch = 256;
    const auto m = model::DlrmConfig::testSuite(256, 8, 100000);
    const auto sys = cost::SystemConfig::cpuSetup(1, 2, 1, kBatch, 1);

    // Predicted: closed-form per-node rates.
    const cost::IterationModel analytical(m, sys);
    const auto estimate = analytical.estimate();
    std::map<std::string, double> predicted;
    for (const auto& node : analytical.nodeBreakdown())
        predicted[node.node_id] = node.seconds;

    // Simulated: the DES schedules the same graph nodes as events.
    sim::DistSimConfig sim_cfg;
    sim_cfg.model = m;
    sim_cfg.system = sys;
    sim_cfg.measure_seconds = 0.5;
    const auto simulated = sim::runDistSim(sim_cfg);

    // Measured: the real trainer walks the same graph; every node id
    // becomes a wall-clock span. Comm nodes have no in-process
    // counterpart and stay blank in the measured column.
    constexpr std::size_t kSteps = 20;
    constexpr std::size_t kEval = 1024;
    data::DatasetConfig data_cfg;
    data_cfg.num_dense = m.num_dense;
    data_cfg.sparse = m.sparse;
    data_cfg.seed = 7;
    data::SyntheticCtrDataset dataset(data_cfg);
    dataset.materialize(kSteps * kBatch + kEval);
    train::TrainConfig train_cfg;
    train_cfg.batch_size = kBatch;
    train_cfg.epochs = 1;

    obs::Tracer& tracer = obs::Tracer::global();
    const bool own_tracing = !trace_session.active();
    if (own_tracing) {
        tracer.reset();
        tracer.setEnabled(true);
    }
    train::trainSingleThread(m, dataset, train_cfg, kEval);
    const auto tracks = tracer.snapshot();
    if (own_tracing)
        tracer.setEnabled(false);

    std::map<std::string, double> measured_total;
    std::size_t measured_iters = 0;
    double measured_iter_seconds = 0.0;
    for (const auto& track : tracks) {
        if (track.simulated)
            continue;
        for (const auto& span : track.spans) {
            measured_total[span.name] += span.seconds();
            if (span.name == "train.iteration") {
                ++measured_iters;
                measured_iter_seconds += span.seconds();
            }
        }
    }
    std::map<std::string, double> measured;
    if (measured_iters > 0) {
        const auto n = static_cast<double>(measured_iters);
        for (const auto& node : analytical.stepGraph().nodes) {
            const auto it = measured_total.find(node.id);
            if (it != measured_total.end())
                measured[node.id] = it->second / n;
        }
        measured_iter_seconds /= n;
    }

    util::TextTable table;
    table.header({"node", "device", "predicted", "simulated",
                  "measured"});
    auto cell = [](const std::map<std::string, double>& column,
                   const std::string& id) {
        const auto it = column.find(id);
        return it == column.end() ? std::string("-") : us(it->second);
    };
    for (const auto& node : analytical.stepGraph().nodes) {
        table.row({node.id, graph::toString(node.device),
                   cell(predicted, node.id),
                   cell(simulated.node_seconds, node.id),
                   cell(measured, node.id)});
    }
    table.row({"iteration", "-", us(estimate.iteration_seconds),
               us(simulated.mean_iteration_seconds),
               us(measured_iter_seconds)});
    std::cout << table.render() << "\n";

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n  \"config\": \"" << m.name << "\",\n"
        << "  \"batch_size\": " << kBatch << ",\n"
        << "  \"measured_iterations\": " << measured_iters << ",\n"
        << "  \"iteration_seconds\": {\"predicted\": "
        << estimate.iteration_seconds << ", \"simulated\": "
        << simulated.mean_iteration_seconds << ", \"measured\": "
        << measured_iter_seconds << "},\n  \"nodes\": [\n";
    const auto& nodes = analytical.stepGraph().nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto& node = nodes[i];
        out << "    {\"id\": \"" << node.id << "\", \"kind\": \""
            << graph::toString(node.kind) << "\", \"device\": \""
            << graph::toString(node.device) << "\", \"predicted_s\": "
            << jsonValue(predicted, node.id) << ", \"simulated_s\": "
            << jsonValue(simulated.node_seconds, node.id)
            << ", \"measured_s\": " << jsonValue(measured, node.id)
            << "}" << (i + 1 < nodes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n\n";

    std::cout <<
        "Reading: compute rows (gemms, interaction, optimizer) line up "
        "across all three\ncolumns; comm rows exist only for the "
        "predicted/simulated distributed system.\nThe measured embedding "
        "rows run the real pooled lookups, which the cost model\nfolds "
        "into its per-lookup trainer overhead.\n";
    return 0;
}
