/**
 * @file
 * Extension: multi-node scale-out for multi-terabyte models — the
 * paper's closing challenge ("model sizes grow into multiple terabytes
 * which requires scaling out on multiple Zion servers") and the
 * multi-Big-Basin mode it could not test ("Due to the lack of this
 * capability, we were not able to test this model setup on multiple
 * Big Basins").
 */
#include <iostream>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Extension: multi-node scale-out",
                  "Multi-TB models on N Zions vs N Big Basins",
                  "M3-like model with 8x hash sizes (~1 TB of "
                  "embeddings), data-parallel GPU servers,\ntables "
                  "sharded across the gang.");

    auto big = model::DlrmConfig::m3Prod();
    for (auto& spec : big.sparse)
        spec.hash_size *= 8;
    big.name = "M3_prod x8 tables";
    std::cout << big.summary() << "\n\n";

    util::TextTable table;
    table.header({"nodes", "Zion host_memory", "Zion eff (ex/s/W)",
                  "BigBasin gpu_memory", "BB eff (ex/s/W)"});
    for (std::size_t nodes : {1, 2, 4, 8, 16, 32}) {
        auto zion = cost::SystemConfig::zionSetup(
            EmbeddingPlacement::HostMemory, 800);
        zion.num_trainers = nodes;
        const auto ze = cost::IterationModel(big, zion).estimate();

        auto bb = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::GpuMemory, 800);
        bb.num_trainers = nodes;
        const auto be = cost::IterationModel(big, bb).estimate();

        table.row({
            std::to_string(nodes),
            ze.feasible ? bench::kexps(ze.throughput)
                        : "infeasible (capacity)",
            ze.feasible ? util::fixed(ze.perfPerWatt(), 1) : "-",
            be.feasible ? bench::kexps(be.throughput)
                        : "infeasible (capacity)",
            be.feasible ? util::fixed(be.perfPerWatt(), 1) : "-",
        });
    }
    std::cout << table.render() << "\n";

    // Scaling efficiency of the Zion gang.
    std::cout << "Zion scale-out efficiency (throughput vs N x "
                 "first-feasible-node rate):\n";
    double per_node = 0.0;
    std::size_t first = 0;
    for (std::size_t nodes : {2, 4, 8, 16, 32}) {
        auto zion = cost::SystemConfig::zionSetup(
            EmbeddingPlacement::HostMemory, 800);
        zion.num_trainers = nodes;
        const auto est = cost::IterationModel(big, zion).estimate();
        if (!est.feasible)
            continue;
        if (per_node == 0.0) {
            per_node = est.throughput / static_cast<double>(nodes);
            first = nodes;
        }
        std::cout << "  " << nodes << " nodes: "
                  << bench::pct(est.throughput /
                                (per_node * static_cast<double>(nodes)))
                  << " of linear (vs " << first << "-node rate)\n";
    }

    std::cout <<
        "\nTakeaway: the 1 TB model fits nowhere on a single server; "
        "Zion gangs host it from\n2 nodes on and scale near-linearly "
        "(inter-node traffic is pooled vectors over fat IB).\nBig "
        "Basins need many more nodes just to *hold* the tables in HBM "
        "and pay cross-node\nall-to-all on 100 GbE — the capability "
        "gap the paper predicted, now quantified.\n";
    return 0;
}
