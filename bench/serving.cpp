/**
 * @file
 * Serving benchmark: QPS-vs-SLA curves across dynamic-batching
 * policies. For each Table II-derived serving replica the harness
 * calibrates a reference service time, then replays deterministic
 * diurnal-Poisson arrival traces (serve::LoadGenerator) through the
 * batching scheduler and the forward-only inference engine at offered
 * loads from well below to above the engine's capacity, reporting
 * achieved QPS, p50/p95/p99 completion latency and the SLA violation
 * rate per (model, policy, offered-QPS) point. A bitwise gate rides
 * along: the serving forward pass must match the training forward
 * pass bit for bit at pool sizes 1/2/8. Emits BENCH_serving.json for
 * the CI regression gate.
 *
 * Usage: serving [--json PATH] [--quick] [--trace out.json]
 */
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/dataset.h"
#include "model/dlrm.h"
#include "serve/engine.h"
#include "serve/load_gen.h"
#include "serve/scheduler.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

using namespace recsim;

namespace {

/**
 * Shrink a Table II production config to a servable replica: the
 * sparse-feature structure (table count, lengths, skew) survives, the
 * parameter volume drops to megabytes so the model instantiates
 * everywhere. Mirrors DlrmConfig::tinyReplica but keeps the
 * production feature mix, which is what drives per-model load shapes.
 */
model::DlrmConfig
servingReplica(model::DlrmConfig cfg)
{
    cfg.name += "_serve";
    cfg.emb_dim = 16;
    cfg.bottom_mlp = {64, 32};
    cfg.top_mlp = {64, 32};
    for (auto& f : cfg.sparse) {
        f.hash_size = std::min<uint64_t>(f.hash_size, 4096);
        f.raw_id_space = 0;
        f.truncation = 8;
        f.dim_override = 0;
    }
    return cfg;
}

data::DatasetConfig
datasetFor(const model::DlrmConfig& m)
{
    data::DatasetConfig cfg;
    cfg.num_dense = m.num_dense;
    cfg.sparse = m.sparse;
    cfg.seed = 42;
    return cfg;
}

/** Best-of reference service time of one mean-sized batch. */
double
referenceServiceSeconds(serve::InferenceEngine& engine,
                        const data::MiniBatch& batch, int iters)
{
    engine.scoreBatch(batch); // warmup
    double best = engine.scoreBatch(batch);
    for (int i = 1; i < iters; ++i)
        best = std::min(best, engine.scoreBatch(batch));
    return best;
}

/** Serving logits vs training forward, memcmp at 1/2/8 threads. */
bool
forwardBitwiseEqual(const model::DlrmConfig& cfg,
                    serve::InferenceEngine& engine)
{
    data::SyntheticCtrDataset ds(datasetFor(cfg));
    const auto batch = ds.nextBatch(64);
    model::Dlrm ref(cfg, 1);
    tensor::Tensor ref_logits;
    ref.forward(batch, ref_logits);
    auto& pool = util::globalThreadPool();
    bool equal = true;
    for (const std::size_t t : {std::size_t(1), std::size_t(2),
                                std::size_t(8)}) {
        pool.resize(t);
        engine.scoreBatch(batch);
        const auto& logits = engine.logits();
        if (logits.size() != ref_logits.size() ||
            std::memcmp(logits.data(), ref_logits.data(),
                        logits.size() * sizeof(float)) != 0)
            equal = false;
    }
    pool.resize(1);
    return equal;
}

struct Policy
{
    std::string name;
    serve::BatchingConfig batching;
};

struct Point
{
    double offered_qps = 0.0;
    serve::ServeReport report;
};

struct PolicyCurve
{
    Policy policy;
    std::vector<Point> points;
};

struct ModelResult
{
    std::string name;
    std::size_t sparse_features = 0;
    double mean_candidates = 0.0;
    double service_s_ref = 0.0;
    double capacity_qps = 0.0;
    double sla_s = 0.0;
    bool forward_bitwise_equal = false;
    std::vector<PolicyCurve> curves;
};

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace(argc, argv);
    std::string json_path = "BENCH_serving.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg == "--quick")
            quick = true;
    }
    const std::size_t queries_per_point = quick ? 120 : 400;
    const int calib_iters = quick ? 3 : 8;

    bench::banner(
        "Serving", "DeepRecSys-style at-scale inference",
        "Load generator -> dynamic batching -> forward-only StepGraph "
        "engine. QPS-vs-SLA\ncurves per batching policy; serving "
        "scores stay bitwise-equal to the training\nforward pass "
        "(gated in CI).");

    const std::vector<model::DlrmConfig> models = {
        servingReplica(model::DlrmConfig::m1Prod()),
        servingReplica(model::DlrmConfig::m2Prod()),
    };
    const std::vector<double> load_factors =
        quick ? std::vector<double>{0.5, 1.5}
              : std::vector<double>{0.25, 0.5, 1.0, 1.5};

    auto& pool = util::globalThreadPool();
    std::vector<ModelResult> results;
    for (const auto& cfg : models) {
        ModelResult mr;
        mr.name = cfg.name;
        mr.sparse_features = cfg.numSparse();
        serve::InferenceEngine engine(cfg, 1);
        mr.forward_bitwise_equal = forwardBitwiseEqual(cfg, engine);

        // Calibrate: one mean-sized query batch, best-of wall time.
        pool.resize(4);
        const auto probe =
            serve::loadForModel(cfg, /*mean_qps=*/1.0, /*sla_s=*/1.0);
        mr.mean_candidates = probe.mean_candidates;
        data::SyntheticCtrDataset calib_ds(datasetFor(cfg));
        const auto calib_batch = calib_ds.nextBatch(
            static_cast<std::size_t>(probe.mean_candidates));
        mr.service_s_ref =
            referenceServiceSeconds(engine, calib_batch, calib_iters);
        mr.capacity_qps = 1.0 / mr.service_s_ref;
        // SLA: generous at low load, violated under saturation.
        mr.sla_s = 10.0 * mr.service_s_ref;

        std::cout << util::format(
            "{}: {} tables, {} candidates/query, ref service {} us "
            "-> capacity ~{} qps, SLA {} ms, forward bitwise {}\n",
            mr.name, mr.sparse_features,
            util::fixed(mr.mean_candidates, 0),
            util::fixed(mr.service_s_ref * 1e6, 0),
            util::fixed(mr.capacity_qps, 0), util::fixed(mr.sla_s * 1e3, 2),
            mr.forward_bitwise_equal ? "EQUAL" : "DIFFERS");

        const std::vector<Policy> policies = {
            {"no_batch", {1, 1u << 20, 0.0}},
            {"greedy", {16, 1u << 20, 0.0}},
            {"max_wait", {16, 1u << 20, 2.0 * mr.service_s_ref}},
        };
        for (const auto& policy : policies) {
            PolicyCurve curve;
            curve.policy = policy;
            for (const double factor : load_factors) {
                const double offered = factor * mr.capacity_qps;
                auto lg_cfg = serve::loadForModel(cfg, offered, mr.sla_s);
                // One whole diurnal period per trace keeps the
                // empirical mean rate at the offered QPS while the
                // peak runs 1.5x hotter than the trough.
                const double duration =
                    static_cast<double>(queries_per_point) / offered;
                lg_cfg.diurnal_amplitude = 0.5;
                lg_cfg.diurnal_period_s = duration;
                serve::LoadGenerator gen(lg_cfg);
                const auto queries = gen.generate(duration);
                if (queries.empty())
                    continue;

                serve::ReplayConfig rc;
                rc.batching = policy.batching;
                Point pt;
                pt.offered_qps = offered;
                pt.report = engine.replay(queries, rc);
                curve.points.push_back(pt);
                std::cout << util::format(
                    "  {} @ {} qps ({}x): achieved {}  p50 {}  p95 {} "
                    " p99 {} ms  viol {}\n",
                    util::padRight(policy.name, 9),
                    util::fixed(offered, 0), util::fixed(factor, 2),
                    util::fixed(pt.report.achieved_qps, 0),
                    util::fixed(pt.report.latency.p50 * 1e3, 2),
                    util::fixed(pt.report.latency.p95 * 1e3, 2),
                    util::fixed(pt.report.latency.p99 * 1e3, 2),
                    bench::pct(pt.report.sla_violation_rate));
            }
            mr.curves.push_back(std::move(curve));
        }
        pool.resize(1);
        results.push_back(std::move(mr));
        std::cout << "\n";
    }

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n";
    out << "  \"threads\": " << util::configuredThreads() << ",\n";
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"queries_per_point\": " << queries_per_point << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t m = 0; m < results.size(); ++m) {
        const auto& mr = results[m];
        out << "    {\n";
        out << "      \"name\": \"" << mr.name << "\",\n";
        out << "      \"sparse_features\": " << mr.sparse_features
            << ",\n";
        out << "      \"mean_candidates\": " << mr.mean_candidates
            << ",\n";
        out << "      \"service_s_ref\": " << mr.service_s_ref << ",\n";
        out << "      \"capacity_qps\": " << mr.capacity_qps << ",\n";
        out << "      \"sla_s\": " << mr.sla_s << ",\n";
        out << "      \"forward_bitwise_equal\": "
            << (mr.forward_bitwise_equal ? "true" : "false") << ",\n";
        out << "      \"policies\": [\n";
        for (std::size_t c = 0; c < mr.curves.size(); ++c) {
            const auto& curve = mr.curves[c];
            out << "        {\"policy\": \"" << curve.policy.name
                << "\", \"max_batch_queries\": "
                << curve.policy.batching.max_batch_queries
                << ", \"max_wait_s\": "
                << curve.policy.batching.max_wait_s
                << ", \"points\": [\n";
            for (std::size_t p = 0; p < curve.points.size(); ++p) {
                const auto& pt = curve.points[p];
                const auto& r = pt.report;
                out << "          {\"offered_qps\": " << pt.offered_qps
                    << ", \"achieved_qps\": " << r.achieved_qps
                    << ", \"served\": " << r.served
                    << ", \"evicted\": " << r.evicted
                    << ", \"p50_s\": " << r.latency.p50
                    << ", \"p95_s\": " << r.latency.p95
                    << ", \"p99_s\": " << r.latency.p99
                    << ", \"sla_violation_rate\": "
                    << r.sla_violation_rate
                    << ", \"mean_batch_queries\": "
                    << r.mean_batch_queries << ", \"utilization\": "
                    << (r.makespan_s > 0.0 ? r.busy_s / r.makespan_s
                                           : 0.0)
                    << "}" << (p + 1 < curve.points.size() ? "," : "")
                    << "\n";
            }
            out << "        ]}"
                << (c + 1 < mr.curves.size() ? "," : "") << "\n";
        }
        out << "      ]\n";
        out << "    }" << (m + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";

    bool gate_ok = true;
    for (const auto& mr : results)
        gate_ok = gate_ok && mr.forward_bitwise_equal;
    return gate_ok ? 0 : 1;
}
