/**
 * @file
 * Table III reproduction: CPU vs Big Basin GPU optimal-setup comparison
 * for M1/M2/M3 — production CPU setups, the prototype GPU setups with
 * the paper's placements, model-selected optimal per-GPU batch sizes,
 * and the relative throughput / power-efficiency rows.
 */
#include <iostream>

#include "bench_util.h"

#include "util/logging.h"
#include "core/estimator.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

namespace {

struct Row
{
    model::DlrmConfig model;
    cost::SystemConfig cpu;
    cost::SystemConfig gpu_template;
    double paper_ratio;
    double paper_eff;
    int paper_batch;
};

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Table III", "CPU-GPU optimal setup comparison",
                  "Relative throughput and power efficiency of one Big "
                  "Basin vs each model's production CPU setup\n(paper "
                  "values in brackets; see EXPERIMENTS.md for the power "
                  "accounting caveat).");

    core::Estimator est;

    auto m3_gpu = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    m3_gpu.hogwild_threads = 4;

    Row rows[] = {
        {model::DlrmConfig::m1Prod(),
         cost::SystemConfig::cpuSetup(6, 8, 2, 200, 1),
         cost::SystemConfig::bigBasinSetup(
             EmbeddingPlacement::GpuMemory, 1600),
         2.25, 4.3, 1600},
        {model::DlrmConfig::m2Prod(),
         cost::SystemConfig::cpuSetup(20, 16, 4, 200, 1),
         cost::SystemConfig::bigBasinSetup(
             EmbeddingPlacement::GpuMemory, 3200),
         0.85, 2.8, 3200},
        {model::DlrmConfig::m3Prod(),
         cost::SystemConfig::cpuSetup(8, 8, 2, 200, 4),
         m3_gpu, 0.67, 0.43, 800},
    };

    util::TextTable table;
    table.header({"", "M1_prod", "M2_prod", "M3_prod"});

    std::vector<std::string> cpu_setup = {"CPU Setup"};
    std::vector<std::string> gpu_setup = {"GPU Setup"};
    std::vector<std::string> placement_row = {"Embedding Placement"};
    std::vector<std::string> sync_row = {"Sync Mode"};
    std::vector<std::string> batch_row = {"Optimal Batch / GPU"};
    std::vector<std::string> thr_row = {"GPU/CPU Rel. Throughput"};
    std::vector<std::string> eff_row = {"GPU/CPU Power Efficiency"};
    std::vector<std::string> abs_row = {"Modeled thr (CPU / GPU)"};
    std::vector<std::string> bn_row = {"GPU bottleneck"};

    for (auto& row : rows) {
        // Re-derive the optimal per-GPU batch with the estimator, as the
        // paper did by scanning for the saturation point.
        const std::vector<std::size_t> candidates =
            {200, 400, 800, 1600, 3200, 6400};
        const auto optimal =
            est.optimalBatch(row.model, row.gpu_template, candidates);
        const auto cmp = est.compare(row.model, row.cpu,
                                     optimal.system);

        cpu_setup.push_back(util::format(
            "{} tr + {} PS", row.cpu.num_trainers,
            row.cpu.num_sparse_ps + row.cpu.num_dense_ps));
        gpu_setup.push_back(util::format(
            "1 Big Basin{}",
            row.gpu_template.num_sparse_ps
                ? util::format(" + {} PS",
                               row.gpu_template.num_sparse_ps)
                : std::string{}));
        placement_row.push_back(
            placement::toString(row.gpu_template.placement));
        sync_row.push_back(util::format(
            "easgd, {} hogwild", row.gpu_template.hogwild_threads));
        batch_row.push_back(util::format(
            "{} [{}]", optimal.system.batch_size, row.paper_batch));
        thr_row.push_back(util::format(
            "{} [{}x]", bench::ratio(cmp.relative_throughput),
            row.paper_ratio));
        eff_row.push_back(util::format(
            "{} [{}x]", bench::ratio(cmp.relative_power_efficiency),
            row.paper_eff));
        abs_row.push_back(util::format(
            "{} / {}", bench::kexps(cmp.baseline.throughput),
            bench::kexps(cmp.candidate.throughput)));
        bn_row.push_back(cmp.candidate.bottleneck);
    }

    table.row(cpu_setup);
    table.row(gpu_setup);
    table.row(placement_row);
    table.row(sync_row);
    table.row(batch_row);
    table.row(thr_row);
    table.row(eff_row);
    table.row(abs_row);
    table.row(bn_row);
    std::cout << table.render() << "\n";

    std::cout <<
        "Shape check: M1 GPU wins clearly, M2 is close to parity, M3 "
        "loses on GPU\n(remote embedding path + sparse PS service are "
        "the bottleneck, as in the paper).\n";
    return 0;
}
