/**
 * @file
 * Fig 13 reproduction: throughput under varying MLP dimensions
 * (width^layers), normalized to the smallest stack. CPU throughput
 * falls faster than GPU as the MLPs grow.
 */
#include <iostream>

#include "bench_util.h"
#include "core/explorer.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 13", "Throughput under varying MLP dimensions",
                  "32 sparse / 256 dense features, hash 100k; "
                  "width^layers stacks as in the paper.");

    core::DesignSpaceExplorer explorer;
    const std::vector<std::pair<std::size_t, std::size_t>> stacks = {
        {64, 2},  {128, 2}, {256, 3}, {512, 3},
        {1024, 3}, {1024, 4}, {2048, 4},
    };
    const auto rows = explorer.mlpSweep(256, 32, stacks);

    const double cpu_base = rows[0].cpu.throughput;
    const double gpu_base = rows[0].gpu.throughput;

    util::TextTable table;
    table.header({"MLP", "CPU rel thr", "GPU rel thr",
                  "CPU bottleneck", "GPU bottleneck"});
    for (const auto& row : rows) {
        table.row({row.label,
                   bench::ratio(row.cpu.throughput / cpu_base),
                   bench::ratio(row.gpu.throughput / gpu_base),
                   row.cpu.bottleneck, row.gpu.bottleneck});
    }
    std::cout << table.render() << "\n";

    std::cout <<
        "Shape check (paper): throughput roughly flat until ~256^3 "
        "(embedding work dominates),\nthen falls — and the normalized "
        "drop is steeper on CPU than on GPU, thanks to the\nGPU's much "
        "higher compute capacity.\n";
    return 0;
}
