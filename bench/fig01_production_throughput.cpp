/**
 * @file
 * Fig 1 reproduction: relative training throughput of the three
 * production models on the CPU fleet, Big Basin (several embedding
 * placements) and prototype Zion, normalized to each model's production
 * CPU setup.
 */
#include <iostream>

#include "bench_util.h"
#include "core/estimator.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

namespace {

std::string
cell(const cost::IterationEstimate& est, double cpu_throughput)
{
    if (!est.feasible)
        return "n/f";
    return bench::ratio(est.throughput / cpu_throughput);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner(
        "Fig 1", "Throughput with different hardware and EMB placement",
        "Throughput relative to each model's production CPU setup "
        "(1.00x). 'n/f' = placement infeasible.");

    core::Estimator est;

    struct ModelRow
    {
        model::DlrmConfig model;
        cost::SystemConfig cpu;
        std::size_t gpu_batch;
    };
    ModelRow rows[] = {
        {model::DlrmConfig::m1Prod(),
         cost::SystemConfig::cpuSetup(6, 8, 2, 200, 1), 1600},
        {model::DlrmConfig::m2Prod(),
         cost::SystemConfig::cpuSetup(20, 16, 4, 200, 1), 3200},
        {model::DlrmConfig::m3Prod(),
         cost::SystemConfig::cpuSetup(8, 8, 2, 200, 4), 800},
    };

    util::TextTable table;
    table.header({"Setup", "M1_prod", "M2_prod", "M3_prod"});

    auto add = [&](const std::string& label, auto make_system) {
        std::vector<std::string> cells = {label};
        for (auto& row : rows) {
            const double cpu_thr =
                est.estimate(row.model, row.cpu).throughput;
            cells.push_back(cell(
                est.estimate(row.model, make_system(row)), cpu_thr));
        }
        table.row(cells);
    };

    add("CPU (production)",
        [](const ModelRow& row) { return row.cpu; });
    add("BigBasin EMB=gpu_memory", [](const ModelRow& row) {
        return cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::GpuMemory, row.gpu_batch);
    });
    add("BigBasin EMB=host_memory", [](const ModelRow& row) {
        return cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::HostMemory, row.gpu_batch);
    });
    add("BigBasin EMB=remote_ps(+8)", [](const ModelRow& row) {
        auto sys = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::RemotePs, row.gpu_batch, 8);
        sys.hogwild_threads = row.model.name == "M3_prod" ? 4 : 1;
        return sys;
    });
    add("Zion EMB=gpu_memory", [](const ModelRow& row) {
        return cost::SystemConfig::zionSetup(
            EmbeddingPlacement::GpuMemory, row.gpu_batch);
    });
    add("Zion EMB=host_memory", [](const ModelRow& row) {
        return cost::SystemConfig::zionSetup(
            EmbeddingPlacement::HostMemory, row.gpu_batch);
    });

    std::cout << table.render() << "\n";
    std::cout <<
        "Shape check (paper): throughput rises CPU -> Big Basin -> "
        "Zion for M1/M2;\nM3 scales poorly on Big Basin (best feasible "
        "placement is remote CPU memory, below the CPU\nbaseline) and "
        "recovers on Zion, whose 2 TB system memory hosts the tables.\n";
    return 0;
}
