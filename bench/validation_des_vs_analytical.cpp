/**
 * @file
 * Validation: the discrete-event simulation versus the closed-form
 * iteration model across a grid of configurations. The two were built
 * from the same service rates but compose them differently (queueing
 * and pipelining vs algebra), so agreement is evidence that neither
 * encodes an accounting bug.
 */
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "util/logging.h"
#include "cost/iteration_model.h"
#include "sim/dist_sim.h"
#include "stats/running_stat.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Validation: DES vs analytical model",
                  "Cross-check of the two performance models",
                  "Throughput ratio sim/analytical over a config grid "
                  "(1.0 = perfect agreement). overlap = critical path "
                  "/ serial node sum\nover the StepGraph edges (lower "
                  "= the placement hides more comm behind compute).");

    util::TextTable table;
    table.header({"config", "analytical", "DES", "ratio", "overlap"});
    stats::RunningStat log_ratios;

    auto check = [&](const std::string& label,
                     const model::DlrmConfig& m,
                     const cost::SystemConfig& sys) {
        const auto analytical =
            cost::IterationModel(m, sys).estimate();
        sim::DistSimConfig cfg;
        cfg.model = m;
        cfg.system = sys;
        cfg.measure_seconds = 0.5;
        const auto simulated = sim::runDistSim(cfg);
        if (!analytical.feasible || !simulated.feasible) {
            table.row({label, "infeasible", "infeasible", "-", "-"});
            return;
        }
        const double ratio =
            simulated.throughput / analytical.throughput;
        log_ratios.add(std::log(ratio));
        table.row({label, bench::kexps(analytical.throughput),
                   bench::kexps(simulated.throughput),
                   bench::ratio(ratio),
                   util::fixed(analytical.overlap_efficiency, 2)});
    };

    for (std::size_t sparse : {8, 32}) {
        const auto m = model::DlrmConfig::testSuite(256, sparse, 100000);
        for (std::size_t trainers : {1, 2, 4}) {
            check(util::format("cpu t{} s{}", trainers, sparse), m,
                  cost::SystemConfig::cpuSetup(trainers, 2, 1, 200, 1));
        }
        check(util::format("cpu hogwild4 s{}", sparse), m,
              cost::SystemConfig::cpuSetup(2, 2, 1, 200, 4));
        for (auto placement : {EmbeddingPlacement::GpuMemory,
                               EmbeddingPlacement::HostMemory,
                               EmbeddingPlacement::RemotePs}) {
            check(util::format("bb {} s{}",
                               placement::toString(placement), sparse),
                  m,
                  cost::SystemConfig::bigBasinSetup(
                      placement, 1600,
                      placement == EmbeddingPlacement::RemotePs ? 4
                                                                : 0));
        }
    }
    const auto m1 = model::DlrmConfig::m1Prod();
    check("cpu m1 production", m1,
          cost::SystemConfig::cpuSetup(6, 8, 2, 200, 1));
    check("bb m1 gpu_memory", m1,
          cost::SystemConfig::bigBasinSetup(
              EmbeddingPlacement::GpuMemory, 1600));

    std::cout << table.render() << "\n";
    const double gm = std::exp(log_ratios.mean());
    const double spread = std::exp(log_ratios.stddev());
    std::cout << "geometric mean ratio " << util::fixed(gm, 2)
              << ", geometric spread x" << util::fixed(spread, 2)
              << " over " << log_ratios.count() << " configs\n\n";
    std::cout <<
        "Reading: the DES lands within a small factor of the "
        "closed-form model across CPU,\nGPU and remote setups; the "
        "residual gap is the queueing/pipelining the algebraic\nmodel "
        "deliberately abstracts (documented in src/sim).\n";
    return 0;
}
