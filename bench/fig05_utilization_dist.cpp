/**
 * @file
 * Fig 5 reproduction: run-to-run utilization distributions of a ranking
 * model at fixed scale — trainer servers hot and narrow, parameter
 * servers cooler with a wide, long-tailed spread.
 */
#include <iostream>

#include "bench_util.h"
#include "fleet/fleet_sim.h"
#include "stats/histogram.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 5",
                  "Utilization distribution at fixed training scale",
                  "500 simulated runs of an M1-like ranking model on "
                  "its production CPU setup,\nwith per-run config "
                  "jitter and system-level noise.");

    fleet::UtilizationStudyConfig cfg;
    cfg.num_runs = 500;
    const auto dists = fleet::utilizationStudy(cfg);

    util::TextTable table;
    table.header({"Resource", "mean", "sd", "p25", "p50", "p75", "p95"});
    const char* order[] = {
        "trainer_cpu", "trainer_mem_bw", "trainer_mem_capacity",
        "trainer_network", "ps_cpu", "ps_mem_bw", "ps_mem_capacity",
        "ps_network",
    };
    for (const char* key : order) {
        const auto s = dists.at(key).summarize();
        table.row({key, bench::pct(s.mean), bench::pct(s.stddev),
                   bench::pct(s.p25), bench::pct(s.median),
                   bench::pct(s.p75), bench::pct(s.p95)});
    }
    std::cout << table.render() << "\n";

    for (const char* key : {"trainer_cpu", "ps_cpu"}) {
        std::cout << key << " distribution:\n";
        stats::Histogram h(0.0, 1.0, 10);
        for (double v : dists.at(key).values())
            h.add(v);
        std::cout << h.render(40) << "\n";
    }

    std::cout <<
        "Shape check (paper): trainers run at high utilization with "
        "small variation;\nparameter servers have lower means and "
        "wider, longer-tailed distributions.\n";
    return 0;
}
