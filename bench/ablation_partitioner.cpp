/**
 * @file
 * Ablation: embedding-table partitioning strategy. The paper warns that
 * "differences in access ratios might create imbalances among servers
 * if not carefully partitioned" — this bench quantifies it by sharding
 * M3's 127 tables across 8 sparse parameter servers three ways and
 * measuring the resulting load imbalance and PS-capped throughput.
 */
#include <iostream>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "placement/partitioner.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::BalanceObjective;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Ablation: table partitioning",
                  "Sec III-A 'imbalances among servers'",
                  "M3_prod's 127 tables across 8 sparse parameter "
                  "servers.");

    const auto m3 = model::DlrmConfig::m3Prod();
    placement::TableCosts costs(m3.sparse, m3.emb_dim, 1.25);
    const double cap = 256e9 * 0.55;

    util::TextTable table;
    table.header({"partitioner", "access imbalance", "bytes imbalance",
                  "shards used", "rel. PS capacity"});

    struct Strategy
    {
        const char* name;
        placement::Partition partition;
    };
    const Strategy strategies[] = {
        {"greedy by access (default)",
         placement::greedyPartition(costs, 8, cap,
                                    BalanceObjective::AccessBytes)},
        {"greedy by bytes",
         placement::greedyPartition(costs, 8, cap,
                                    BalanceObjective::Bytes)},
        {"sequential fill",
         placement::sequentialPartition(costs, 8, cap)},
    };

    // PS-capped throughput scales inversely with the access imbalance
    // (the hottest shard saturates first).
    const double best_imbalance =
        strategies[0].partition.accessImbalance();
    for (const auto& s : strategies) {
        table.row({
            s.name,
            util::fixed(s.partition.accessImbalance(), 2),
            util::fixed(s.partition.bytesImbalance(), 2),
            std::to_string(s.partition.shardsUsed()),
            s.partition.feasible
                ? bench::ratio(best_imbalance /
                               s.partition.accessImbalance())
                : std::string("infeasible"),
        });
    }
    std::cout << table.render() << "\n";

    // Row-wise alternative for the single largest table.
    std::size_t largest = 0;
    for (std::size_t i = 1; i < m3.sparse.size(); ++i) {
        if (m3.sparse[i].hash_size > m3.sparse[largest].hash_size)
            largest = i;
    }
    const double big_bytes = static_cast<double>(
        m3.sparse[largest].hash_size) * m3.emb_dim * 4;
    const auto row_wise = placement::rowWisePartition(
        big_bytes, m3.sparse[largest].effectiveMeanLength() *
            m3.emb_dim * 4, 8, cap);
    std::cout << "Row-wise split of the largest table ("
              << util::bytesToString(big_bytes) << ", "
              << util::countToString(static_cast<double>(
                     m3.sparse[largest].hash_size))
              << " rows): per-shard "
              << util::bytesToString(row_wise.shard_bytes[0])
              << ", access imbalance "
              << util::fixed(row_wise.accessImbalance(), 2) << "\n\n";

    std::cout <<
        "Takeaway: access-aware greedy packing keeps shard load within "
        "a few percent of even;\nsize-only packing leaves hot shards "
        "~“imbalance”x hotter, directly cutting the sparse-PS\n"
        "capacity that bounds M3 — the paper's careful-partitioning "
        "warning, quantified.\n";
    return 0;
}
