/**
 * @file
 * Kernel benchmark with a serial-vs-parallel regression gate. Measures
 * the library's hot compute kernels — GEMM variants, elementwise ops,
 * embedding-bag forward/backward, the quantized dequant path and the
 * full DLRM step — once with a 1-thread pool and once with N threads,
 * and emits BENCH_kernels.json (GFLOP/s for GEMMs, elem/s, lookups/s
 * or examples/s elsewhere) for CI to diff and gate on.
 *
 * A naive triple-loop GEMM (the pre-thread-pool kernel, zero-skip
 * branch included) is measured alongside as the historical baseline,
 * so the JSON always carries the speedup of the blocked kernel over
 * the code it replaced.
 *
 * Usage: micro_kernels [--json PATH] [--threads N] [--quick]
 *                      [--trace out.json]
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/dataset.h"
#include "model/dlrm.h"
#include "nn/embedding_bag.h"
#include "nn/interaction.h"
#include "nn/quantized_embedding.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

using namespace recsim;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Best-iteration throughput of fn: ops_per_iter / min(iteration time),
 * run for at least min_seconds (after one warmup call).
 */
template <typename F>
double
measureOpsPerSec(F&& fn, double ops_per_iter, double min_seconds)
{
    fn();  // warmup: faults pages, fills workspaces
    double best = std::numeric_limits<double>::infinity();
    double total = 0.0;
    int iters = 0;
    while ((total < min_seconds || iters < 3) && iters < 10000) {
        const double t0 = nowSeconds();
        fn();
        const double dt = nowSeconds() - t0;
        best = std::min(best, dt);
        total += dt;
        ++iters;
    }
    return ops_per_iter / best;
}

/** The pre-change GEMM: single-thread ikj with the zero-skip branch. */
void
naiveMatmul(const tensor::Tensor& a, const tensor::Tensor& b,
            tensor::Tensor& out)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.resize(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float* brow = b.row(p);
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

struct KernelResult
{
    std::string name;
    std::string metric;
    double serial = 0.0;    ///< Throughput with a 1-thread pool.
    double parallel = 0.0;  ///< Throughput with the N-thread pool.
};

struct Harness
{
    std::size_t threads = 1;
    double min_seconds = 0.25;
    std::vector<KernelResult> results;

    /** Measure @p fn serial then parallel and record one row. */
    template <typename F>
    void run(const std::string& name, const std::string& metric,
             double ops_per_iter, F&& fn)
    {
        KernelResult r;
        r.name = name;
        r.metric = metric;
        util::globalThreadPool().resize(1);
        r.serial = measureOpsPerSec(fn, ops_per_iter, min_seconds);
        util::globalThreadPool().resize(threads);
        r.parallel = measureOpsPerSec(fn, ops_per_iter, min_seconds);
        util::globalThreadPool().resize(1);
        results.push_back(r);
        std::cout << util::format(
            "{} [{}]  serial {}  {}-thread {}  speedup {}\n",
            name, metric, r.serial, threads, r.parallel,
            r.serial > 0.0 ? r.parallel / r.serial : 0.0);
    }
};

nn::SparseBatch
makeBatch(std::size_t batch, std::size_t lookups, uint64_t id_space,
          util::Rng& rng)
{
    util::ZipfSampler zipf(id_space, 1.05);
    nn::SparseBatch out;
    out.offsets.push_back(0);
    for (std::size_t ex = 0; ex < batch; ++ex) {
        for (std::size_t k = 0; k < lookups; ++k)
            out.indices.push_back(zipf(rng));
        out.offsets.push_back(out.indices.size());
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace(argc, argv);
    std::string json_path = "BENCH_kernels.json";
    std::size_t threads = util::configuredThreads();
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg == "--threads" && i + 1 < argc)
            threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = static_cast<std::size_t>(
                std::stoul(arg.substr(10)));
        else if (arg == "--quick")
            quick = true;
    }
    threads = std::max<std::size_t>(threads, 1);

    Harness h;
    h.threads = threads;
    h.min_seconds = quick ? 0.05 : 0.25;

    util::Rng rng(1);
    std::cout << util::format(
        "micro_kernels: {} threads (hardware_concurrency {}), "
        "simd kernels: {}\n\n",
        threads,
        static_cast<unsigned>(std::thread::hardware_concurrency()),
        tensor::simd::activeKernels());

    // --- GEMM family ---------------------------------------------------
    for (const std::size_t n : {std::size_t(128), std::size_t(256),
                                std::size_t(512)}) {
        if (quick && n > 256)
            continue;
        tensor::Tensor a(n, n), b(n, n), out;
        a.fillNormal(rng, 1.0f);
        b.fillNormal(rng, 1.0f);
        const double flops = 2.0 * static_cast<double>(n) * n * n;

        // Historical baseline: the pre-pool kernel, serial only.
        KernelResult naive;
        naive.name = util::format("gemm_naive_{}", n);
        naive.metric = "GFLOP/s";
        naive.serial = measureOpsPerSec(
            [&] { naiveMatmul(a, b, out); }, flops, h.min_seconds);
        naive.parallel = naive.serial;
        h.results.push_back(naive);
        std::cout << util::format("{} [GFLOP/s]  serial {}\n",
                                  naive.name, naive.serial);

        h.run(util::format("gemm_{}", n), "GFLOP/s", flops,
              [&] { tensor::matmul(a, b, out); });
        h.run(util::format("gemm_transA_{}", n), "GFLOP/s", flops,
              [&] { tensor::matmulTransA(a, b, out); });
        h.run(util::format("gemm_transB_{}", n), "GFLOP/s", flops,
              [&] { tensor::matmulTransB(a, b, out); });

        // Epilogue fusion: bias + relu folded into the GEMM's final
        // k-block store, vs the three-pass pipeline it replaces. Same
        // FLOP count on both rows so the delta is pure memory traffic.
        tensor::Tensor bias(n);
        bias.fillNormal(rng, 1.0f);
        h.run(util::format("gemm_bias_relu_fused_{}", n), "GFLOP/s",
              flops,
              [&] { tensor::matmulBiasAct(a, b, bias, true, out); });
        h.run(util::format("gemm_bias_relu_unfused_{}", n), "GFLOP/s",
              flops, [&] {
                  tensor::matmul(a, b, out);
                  tensor::addBiasRows(out, bias);
                  tensor::reluInPlace(out);
              });

        // Backward fusion: one layer's full grad step. Fused row: the
        // bias grad rides the dW GEMM sweep and the dReLU mask the dx
        // GEMM store; unfused row: the same work as four passes. Both
        // rows count the two GEMMs' FLOPs so the delta is, again, the
        // saved epilogue memory traffic.
        tensor::Tensor xin(n, n), dy(n, n), mask(n, n);
        xin.fillNormal(rng, 1.0f);
        dy.fillNormal(rng, 1.0f);
        mask.fillNormal(rng, 1.0f);
        tensor::Tensor dw, db, dx;
        const double bwd_flops = 2.0 * flops;
        h.run(util::format("gemm_dgrad_fused_{}", n), "GFLOP/s",
              bwd_flops, [&] {
                  tensor::matmulTransABiasGrad(xin, dy, dw, db);
                  tensor::matmulTransBMask(dy, b, &mask, dx);
              });
        h.run(util::format("gemm_dgrad_unfused_{}", n), "GFLOP/s",
              bwd_flops, [&] {
                  tensor::matmulTransA(xin, dy, dw);
                  tensor::sumRows(dy, db);
                  tensor::matmulTransB(dy, b, dx);
                  tensor::reluBackward(mask, dx, dx);
              });
    }

    // --- Interaction backward: flatten fusion --------------------------
    // The top-MLP layer-0 input-grad GEMM writing the interaction
    // backward's destinations directly (segmented outputs) vs the
    // monolithic GEMM into a flatten buffer that a second pass splits.
    {
        const std::size_t batch = quick ? 128 : 512;
        const std::size_t d = 64, sparse = 8;
        const std::size_t width =
            nn::DotInteraction::outWidth(sparse, d);
        const std::size_t hidden = 256;
        tensor::Tensor grad(batch, hidden), w(hidden, width);
        grad.fillNormal(rng, 1.0f);
        w.fillNormal(rng, 1.0f);
        const double flops = 2.0 * static_cast<double>(batch) *
            hidden * width;
        tensor::Tensor wt(width, hidden);
        for (std::size_t i = 0; i < hidden; ++i)
            for (std::size_t j = 0; j < width; ++j)
                wt.at(j, i) = w.at(i, j);
        tensor::Tensor d_dense, d_pairs, flat;
        h.run("interaction_bwd_flatten_fused", "GFLOP/s", flops, [&] {
            std::vector<tensor::GemmOutSegment> segs = {
                {&d_dense, d, /*zero_bias=*/true},
                {&d_pairs, width - d, false}};
            tensor::matmulTransBSegmented(grad, wt, segs);
        });
        h.run("interaction_bwd_flatten_unfused", "GFLOP/s", flops,
              [&] {
                  tensor::matmulTransB(grad, wt, flat);
                  d_dense.resize(batch, d);
                  d_pairs.resize(batch, width - d);
                  for (std::size_t ex = 0; ex < batch; ++ex) {
                      const float* frow = flat.row(ex);
                      std::memcpy(d_dense.row(ex), frow,
                                  d * sizeof(float));
                      std::memcpy(d_pairs.row(ex), frow + d,
                                  (width - d) * sizeof(float));
                  }
              });
    }

    // --- Elementwise / reduction kernels -------------------------------
    {
        const std::size_t rows = quick ? 1024 : 4096, cols = 512;
        tensor::Tensor x(rows, cols), bias(cols), sums;
        x.fillNormal(rng, 1.0f);
        bias.fillNormal(rng, 1.0f);
        const double elems = static_cast<double>(rows) * cols;
        h.run("add_bias_rows", "elem/s", elems,
              [&] { tensor::addBiasRows(x, bias); });
        h.run("sum_rows", "elem/s", elems,
              [&] { tensor::sumRows(x, sums); });
        h.run("relu", "elem/s", elems,
              [&] { tensor::reluInPlace(x); });
        tensor::Tensor sig(rows, cols);
        sig.fillNormal(rng, 1.0f);
        h.run("sigmoid", "elem/s", elems,
              [&] { tensor::sigmoidInPlace(sig); });
    }

    // --- Embedding kernels ---------------------------------------------
    {
        const std::size_t batch = quick ? 512 : 2048;
        const std::size_t dim = 64, lookups = 16;
        const uint64_t hash = quick ? 100000 : 1000000;
        util::Rng init_rng(2);
        nn::EmbeddingBag bag(hash, dim, init_rng);
        const auto sb = makeBatch(batch, lookups, hash * 4, rng);
        const double total = static_cast<double>(sb.totalLookups());
        tensor::Tensor pooled;
        h.run("embedding_fwd", "lookups/s", total,
              [&] { bag.forward(sb, pooled); });
        bag.forward(sb, pooled);
        tensor::Tensor dy(batch, dim);
        dy.fillNormal(rng, 1.0f);
        nn::SparseGrad grad;
        h.run("embedding_bwd", "lookups/s", total,
              [&] { bag.backward(sb, dy, grad); });
        nn::QuantizedEmbeddingBag qbag(bag,
                                       nn::EmbeddingPrecision::Int8);
        h.run("embedding_fwd_int8", "lookups/s", total,
              [&] { qbag.forward(sb, pooled); });
    }

    // --- Full model step -----------------------------------------------
    {
        const std::size_t batch = quick ? 64 : 256;
        const auto cfg = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
        model::Dlrm dlrm(cfg, 1);
        data::DatasetConfig ds_cfg;
        ds_cfg.num_dense = cfg.num_dense;
        ds_cfg.sparse = cfg.sparse;
        data::SyntheticCtrDataset ds(ds_cfg);
        const auto mb = ds.nextBatch(batch);
        h.run("dlrm_fwd_bwd", "examples/s", static_cast<double>(batch),
              [&] {
                  dlrm.forwardBackward(mb);
                  dlrm.zeroGrad();
              });
    }

    util::globalThreadPool().resize(threads);
    obs::publishThreadPoolMetrics();
    const auto& metrics = obs::MetricsRegistry::global();
    std::cout << util::format(
        "\npool: {} jobs, {} tasks dispatched\n",
        metrics.gauge("pool.jobs"), metrics.gauge("pool.tasks"));

    // --- JSON emission --------------------------------------------------
    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n";
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"simd_kernels\": \"" << tensor::simd::activeKernels()
        << "\",\n";
    out << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < h.results.size(); ++i) {
        const auto& r = h.results[i];
        out << "    {\"name\": \"" << r.name << "\", \"metric\": \""
            << r.metric << "\", \"serial\": " << r.serial
            << ", \"parallel\": " << r.parallel << ", \"speedup\": "
            << (r.serial > 0.0 ? r.parallel / r.serial : 0.0) << "}"
            << (i + 1 < h.results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
