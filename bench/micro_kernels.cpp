/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels: GEMM,
 * embedding-bag lookup, full DLRM forward/backward, the Zipf sampler
 * and the DES event queue. These measure the *library itself* (the
 * functional substrate), not the modeled hardware.
 */
#include <benchmark/benchmark.h>

#include "data/dataset.h"
#include "des/event_queue.h"
#include "model/dlrm.h"
#include "nn/embedding_bag.h"
#include "tensor/ops.h"
#include "util/random.h"

using namespace recsim;

namespace {

void
BM_Gemm(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(1);
    tensor::Tensor a(n, n), b(n, n), out;
    a.fillNormal(rng, 1.0f);
    b.fillNormal(rng, 1.0f);
    for (auto _ : state) {
        tensor::matmul(a, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_EmbeddingLookup(benchmark::State& state)
{
    const auto hash = static_cast<uint64_t>(state.range(0));
    util::Rng rng(2);
    nn::EmbeddingBag bag(hash, 64, rng);
    util::ZipfSampler zipf(hash * 4, 1.05);

    nn::SparseBatch batch;
    batch.offsets.push_back(0);
    for (int ex = 0; ex < 256; ++ex) {
        for (int k = 0; k < 8; ++k)
            batch.indices.push_back(zipf(rng));
        batch.offsets.push_back(batch.indices.size());
    }
    tensor::Tensor out;
    for (auto _ : state) {
        bag.forward(batch, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(batch.totalLookups()));
}
BENCHMARK(BM_EmbeddingLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void
BM_DlrmForwardBackward(benchmark::State& state)
{
    const auto batch_size = static_cast<std::size_t>(state.range(0));
    const auto cfg = model::DlrmConfig::tinyReplica(8, 13, 2000, 16);
    model::Dlrm dlrm(cfg, 1);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = cfg.num_dense;
    ds_cfg.sparse = cfg.sparse;
    data::SyntheticCtrDataset ds(ds_cfg);
    const auto batch = ds.nextBatch(batch_size);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dlrm.forwardBackward(batch));
        dlrm.zeroGrad();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_DlrmForwardBackward)->Arg(64)->Arg(256);

void
BM_ZipfSampler(benchmark::State& state)
{
    util::Rng rng(3);
    util::ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.05);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampler)->Arg(1000)->Arg(10000000);

void
BM_EventQueue(benchmark::State& state)
{
    for (auto _ : state) {
        des::EventQueue eq;
        uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<des::Tick>((i * 7919) % 10000),
                        [&fired] { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

} // namespace

BENCHMARK_MAIN();
