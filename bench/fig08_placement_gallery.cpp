/**
 * @file
 * Fig 8 companion: the paper's placement diagram, rendered from real
 * plans. For each production model and platform, shows where the
 * planner puts every byte — which GPUs/hosts/parameter servers hold
 * how much, the lookup-traffic split, and the load imbalance.
 */
#include <iostream>

#include "bench_util.h"
#include "util/logging.h"
#include "placement/placement.h"
#include "model/config.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

namespace {

void
describe(const std::string& label, const placement::PlacementPlan& plan)
{
    std::cout << label << ": ";
    if (!plan.feasible) {
        std::cout << "infeasible (" << plan.infeasible_reason << ")\n";
        return;
    }
    std::cout << util::bytesToString(plan.resident_bytes) << " resident";
    if (plan.replicated) {
        std::cout << ", replicated on every GPU";
    } else if (plan.partition.shardsUsed() > 0) {
        std::cout << " across " << plan.partition.shardsUsed()
                  << " shard(s), access imbalance "
                  << util::fixed(plan.access_imbalance, 2);
    }
    if (plan.gpu_lookup_fraction > 0.0 &&
        plan.gpu_lookup_fraction < 1.0) {
        std::cout << ", " << bench::pct(plan.gpu_lookup_fraction)
                  << " of lookups from GPU";
    }
    std::cout << "\n";
    if (!plan.replicated && plan.partition.numShards() > 1 &&
        plan.partition.numShards() <= 16) {
        std::cout << "    shards:";
        for (std::size_t s = 0; s < plan.partition.numShards(); ++s) {
            if (plan.partition.shard_bytes[s] > 0.0) {
                std::cout << " [" << s << "] "
                          << util::bytesToString(
                                 plan.partition.shard_bytes[s]);
            }
        }
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 8 (companion)",
                  "Embedding table placement options, realized",
                  "Planner output for each production model on each "
                  "platform and strategy.");

    placement::PlacementOptions options;
    options.num_sparse_ps = 8;

    for (const auto& m : {model::DlrmConfig::m1Prod(),
                          model::DlrmConfig::m2Prod(),
                          model::DlrmConfig::m3Prod()}) {
        std::cout << "== " << m.summary() << "\n";
        for (const auto& [pname, platform] :
             {std::pair{"BigBasin", hw::Platform::bigBasin()},
              std::pair{"Zion", hw::Platform::zionPrototype()}}) {
            for (auto strategy : {EmbeddingPlacement::GpuMemory,
                                  EmbeddingPlacement::HostMemory,
                                  EmbeddingPlacement::Hybrid,
                                  EmbeddingPlacement::RemotePs}) {
                describe(util::format("  {} {}", pname,
                                      placement::toString(strategy)),
                         placement::planPlacement(strategy, m, platform,
                                                  options));
            }
        }
        std::cout << "\n";
    }

    std::cout <<
        "Reading: the four strategies of the paper's Fig 8 become "
        "concrete byte layouts — M1/M2\nfit GPU memory outright, M3 "
        "needs remote servers or a hybrid split on Big Basin, and\n"
        "everything fits Zion's host memory.\n";
    return 0;
}
