/**
 * @file
 * Extension: trainer-side hot-row caching for remote embedding
 * placement ("The characterization results ... open up new
 * optimization opportunities as well, such as caching [58]",
 * Section III-A). Zipf-skewed lookups mean a small cache absorbs a
 * large share of the remote pulls; gradient pushes write through.
 */
#include <iostream>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Extension: hot-row caching",
                  "Remote-placement cache (paper Sec III-A opportunity)",
                  "M3_prod on one Big Basin with remote sparse PS and a "
                  "trainer-side row cache.");

    const auto m3 = model::DlrmConfig::m3Prod();

    util::TextTable table;
    table.header({"cache size", "hit fraction", "throughput",
                  "vs no cache", "bottleneck"});
    double baseline = 0.0;
    for (double gb : {0.0, 0.25, 1.0, 4.0, 16.0, 64.0}) {
        auto sys = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::RemotePs, 800, 8);
        sys.hogwild_threads = 4;
        sys.remote_cache_bytes = gb * 1e9;
        cost::IterationModel im(m3, sys);
        const auto est = im.estimate();
        if (gb == 0.0)
            baseline = est.throughput;
        table.row({
            gb == 0.0 ? "none" : util::fixed(gb, 2) + " GB",
            bench::pct(im.remoteCacheHitFraction()),
            bench::kexps(est.throughput),
            bench::ratio(est.throughput / baseline),
            est.bottleneck,
        });
    }
    std::cout << table.render() << "\n";

    std::cout << "Cache effectiveness vs access skew (4 GB cache):\n";
    util::TextTable skew;
    skew.header({"zipf exponent", "hit fraction", "throughput"});
    for (double exponent : {0.0, 0.6, 0.9, 1.05, 1.3}) {
        auto skewed = m3;
        for (auto& spec : skewed.sparse)
            spec.zipf_exponent = exponent;
        auto sys = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::RemotePs, 800, 8);
        sys.hogwild_threads = 4;
        sys.remote_cache_bytes = 4e9;
        cost::IterationModel im(skewed, sys);
        skew.row({util::fixed(exponent, 2),
                  bench::pct(im.remoteCacheHitFraction()),
                  bench::kexps(im.estimate().throughput)});
    }
    std::cout << skew.render() << "\n";

    std::cout <<
        "Takeaway: with production-like skew a ~1 GB cache absorbs most "
        "remote pulls and\nroughly triples M3's Big Basin throughput; "
        "returns saturate once write-through\ngradient pushes dominate. "
        "With uniform access (exponent 0) the cache is useless —\nthe "
        "benefit comes entirely from the skew the paper characterizes.\n";
    return 0;
}
