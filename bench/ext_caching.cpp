/**
 * @file
 * Extension: hot-row caching for embedding lookups ("The
 * characterization results ... open up new optimization opportunities
 * as well, such as caching [58]", Section III-A). Zipf-skewed lookups
 * mean a small cache absorbs a large share of the traffic.
 *
 * Two halves:
 *  1. Analytic: the trainer-side remote-pull cache on the M3/Big Basin
 *     remote-PS setup (cost::IterationModel::remoteCacheHitFraction).
 *  2. Executable: nn::CachedBackend on a trainable model — the
 *     placement allocator packs a hot-tier budget per table, the
 *     backend measures actual hit rates on the synthetic Zipf trace,
 *     and the two are printed side by side. A timing loop checks that
 *     hot-hit lookups cost no more than the flat DramBackend (the
 *     backends share one gather kernel; the cache only classifies).
 *
 * Usage: ext_caching [--json PATH] [--trace out.json]
 * Emits BENCH_ext_caching.json for the CI gate.
 */
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "data/dataset.h"
#include "hw/platform.h"
#include "model/dlrm.h"
#include "nn/embedding_backend.h"
#include "placement/placement.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

namespace {

constexpr std::size_t kBatch = 512;
constexpr std::size_t kWarmupBatches = 4;
constexpr std::size_t kMeasureBatches = 16;
constexpr std::size_t kTimedBatches = 30;

/** One hot-tier budget sweep point, predicted vs measured. */
struct SweepPoint
{
    double fraction = 0.0;
    double budget_bytes = 0.0;
    double plan_hot_bytes = 0.0;
    double predicted = 0.0;
    double measured = 0.0;
    double drift = 0.0;
};

/** Aggregate hit rate over every table's backend counters. */
double
aggregateHitRate(model::Dlrm& model)
{
    uint64_t hot = 0, total = 0;
    for (auto& table : model.tables()) {
        const nn::EmbeddingTierStats s = table.backend().stats();
        hot += s.hot_lookups;
        total += s.lookups();
    }
    return total > 0
        ? static_cast<double>(hot) / static_cast<double>(total) : 0.0;
}

/** Seconds per forward batch over @p n batches of the dataset. */
double
timeForward(model::Dlrm& model, const data::SyntheticCtrDataset& data,
            std::size_t n, tensor::Tensor& logits)
{
    // Untimed pass to touch tables and size scratch.
    model.forward(data.epochBatch(0, kBatch), logits);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t b = 0; b < n; ++b)
        model.forward(data.epochBatch(b * kBatch, kBatch), logits);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() /
        static_cast<double>(n);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    std::string json_path = "BENCH_ext_caching.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }

    bench::banner("Extension: hot-row caching",
                  "Tiered embedding storage (paper Sec III-A "
                  "opportunity)",
                  "Analytic remote-pull cache on M3/Big Basin, then the "
                  "executable CachedBackend:\npredicted (placement + "
                  "Zipf top-mass) vs measured hit rate per hot-tier "
                  "budget.");

    // ---- 1. Analytic: trainer-side cache for remote placement -------
    const auto m3 = model::DlrmConfig::m3Prod();
    util::TextTable table;
    table.header({"cache size", "hit fraction", "throughput",
                  "vs no cache", "bottleneck"});
    double baseline = 0.0;
    for (double gb : {0.0, 0.25, 1.0, 4.0, 16.0, 64.0}) {
        auto sys = cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::RemotePs, 800, 8);
        sys.hogwild_threads = 4;
        sys.remote_cache_bytes = gb * 1e9;
        cost::IterationModel im(m3, sys);
        const auto est = im.estimate();
        if (gb == 0.0)
            baseline = est.throughput;
        table.row({
            gb == 0.0 ? "none" : util::fixed(gb, 2) + " GB",
            bench::pct(im.remoteCacheHitFraction()),
            bench::kexps(est.throughput),
            bench::ratio(est.throughput / baseline),
            est.bottleneck,
        });
    }
    std::cout << table.render() << "\n";

    // ---- 2. Executable: CachedBackend hit-rate validation -----------
    // A trainable shape with enough lookups per batch for stable
    // rates: 4 tables x 60k rows, 8 lookups per table per example.
    const auto m = model::DlrmConfig::testSuite(32, 4, 60000, 64, 2,
                                                8.0, 0);
    data::DatasetConfig data_cfg;
    data_cfg.num_dense = m.num_dense;
    data_cfg.sparse = m.sparse;
    data_cfg.seed = 11;
    data::SyntheticCtrDataset dataset(data_cfg);
    dataset.materialize((kWarmupBatches + kMeasureBatches + 4) * kBatch);

    model::Dlrm model(m, 3);
    tensor::Tensor logits;

    placement::PlacementOptions popts;
    const double planner_bytes = popts.memory_overhead_factor *
        m.embeddingBytes();
    const hw::Platform host = hw::Platform::dualSocketCpu();

    std::cout << "Executable CachedBackend ("
              << m.sparse.size() << " tables x "
              << m.sparse[0].hash_size << " rows, Zipf "
              << util::fixed(m.sparse[0].zipf_exponent, 2)
              << ", steady state after " << kWarmupBatches
              << " warmup batches):\n";
    util::TextTable exec;
    exec.header({"hot tier", "of tables", "predicted hit",
                 "measured hit", "drift"});
    std::vector<SweepPoint> sweep;
    double max_drift = 0.0;
    for (double fraction : {0.02, 0.05, 0.1, 0.3, 0.6}) {
        SweepPoint pt;
        pt.fraction = fraction;
        pt.budget_bytes = fraction * planner_bytes;

        // The analytic side: placement packs the budget per table.
        popts.hot_tier_bytes = pt.budget_bytes;
        const placement::PlacementPlan plan = placement::planPlacement(
            EmbeddingPlacement::HostMemory, m, host, popts);
        pt.plan_hot_bytes = plan.hot_tier_bytes;
        pt.predicted = plan.hot_hit_fraction;

        // The executable side: the same split, measured on the trace.
        model.installCachedEmbeddingBackends(pt.budget_bytes, 1);
        for (std::size_t b = 0; b < kWarmupBatches; ++b)
            model.forward(dataset.epochBatch(b * kBatch, kBatch),
                          logits);
        for (auto& t : model.tables())
            t.backend().resetStats();
        for (std::size_t b = 0; b < kMeasureBatches; ++b)
            model.forward(dataset.epochBatch(
                              (kWarmupBatches + b) * kBatch, kBatch),
                          logits);
        pt.measured = aggregateHitRate(model);
        pt.drift = std::abs(pt.predicted - pt.measured);
        max_drift = std::max(max_drift, pt.drift);

        exec.row({util::bytesToString(pt.budget_bytes),
                  bench::pct(fraction), bench::pct(pt.predicted),
                  bench::pct(pt.measured), util::fixed(pt.drift, 3)});
        sweep.push_back(pt);
    }
    std::cout << exec.render() << "\n";

    // ---- 3. Hot-hit lookups must cost no more than flat DRAM --------
    // Whole tables pinned: every lookup is a hot hit, and the gather
    // kernel is byte-identical to DramBackend's — the only extra work
    // is the per-chunk bitmap classification.
    model.installDramEmbeddingBackends();
    const double dram_s = timeForward(model, dataset, kTimedBatches,
                                      logits);
    for (std::size_t f = 0; f < model.tables().size(); ++f) {
        nn::CachedBackendConfig cfg;
        cfg.hot_rows = m.sparse[f].hash_size;  // pin the whole table
        model.setEmbeddingBackend(f, nn::makeCachedBackend(cfg));
    }
    const double cached_s = timeForward(model, dataset, kTimedBatches,
                                        logits);
    const double timing_ratio = dram_s > 0.0 ? cached_s / dram_s : 0.0;
    std::cout << "hot-hit lookup cost: DramBackend "
              << util::fixed(dram_s * 1e6, 1)
              << " us/batch, CachedBackend (all hot) "
              << util::fixed(cached_s * 1e6, 1) << " us/batch, ratio "
              << util::fixed(timing_ratio, 3) << "\n\n";

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n  \"config\": \"" << m.name << "\",\n"
        << "  \"batch_size\": " << kBatch << ",\n"
        << "  \"measure_batches\": " << kMeasureBatches << ",\n"
        << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint& pt = sweep[i];
        out << "    {\"fraction\": " << pt.fraction
            << ", \"budget_bytes\": " << pt.budget_bytes
            << ", \"plan_hot_bytes\": " << pt.plan_hot_bytes
            << ", \"predicted_hit_rate\": " << pt.predicted
            << ", \"measured_hit_rate\": " << pt.measured
            << ", \"drift\": " << pt.drift << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"max_drift\": " << max_drift << ",\n"
        << "  \"timing\": {\"dram_seconds_per_batch\": " << dram_s
        << ", \"cached_hot_seconds_per_batch\": " << cached_s
        << ", \"cached_over_dram\": " << timing_ratio << "}\n}\n";
    std::cout << "wrote " << json_path << "\n\n";

    std::cout <<
        "Takeaway: with production-like skew a small hot tier absorbs "
        "most lookups; the\nexecutable CachedBackend's measured hit "
        "rates track the placement allocator's\nZipf-top-mass "
        "prediction within a few points. Hot hits gather through the "
        "same\nkernel as flat DRAM (results are bitwise-identical); "
        "the modest overhead is the\ntier accounting itself, bounded "
        "by the CI gate on the ratio above.\n";
    return 0;
}
