/**
 * @file
 * Fig 15 reproduction (functional): train a scaled-down DLRM on a fixed
 * synthetic dataset at increasing batch sizes, re-tuning the learning
 * rate for every batch size (the paper's AutoML sweep), and report the
 * normalized-entropy gap versus the small-batch baseline. Despite the
 * retuning, the gap grows with batch size.
 */
#include <iostream>

#include "bench_util.h"
#include "model/config.h"
#include "train/sweep.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 15",
                  "Accuracy (NE) gap vs batch size after LR retuning",
                  "Scaled-down DLRM on a fixed synthetic dataset; one "
                  "pass over the data per run;\nLR grid retuned per "
                  "batch size.");

    const auto m = model::DlrmConfig::tinyReplica(6, 12, 1000, 8);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = m.num_dense;
    ds_cfg.sparse = m.sparse;
    ds_cfg.seed = 2021;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(34000);

    const std::vector<float> lr_grid = {0.02f, 0.05f, 0.1f, 0.2f};
    const std::vector<std::size_t> batches =
        {64, 256, 1024, 4096, 8192};

    util::TextTable table;
    table.header({"batch size", "best LR", "steps", "eval NE",
                  "NE gap vs baseline", "accuracy"});

    double baseline_ne = 0.0;
    for (std::size_t batch : batches) {
        train::TrainConfig cfg;
        cfg.batch_size = batch;
        cfg.epochs = 1;
        cfg.optimizer = train::OptimizerKind::Adagrad;
        const auto sweep = train::sweepLearningRate(m, ds, cfg, lr_grid,
                                                    2000);
        const auto& best = sweep.best();
        if (batch == batches.front())
            baseline_ne = best.result.eval_ne;
        const double gap_pct =
            (best.result.eval_ne - baseline_ne) / baseline_ne * 100.0;
        table.row({
            std::to_string(batch),
            util::fixed(best.learning_rate, 2),
            std::to_string(best.result.steps),
            util::fixed(best.result.eval_ne, 4),
            (gap_pct >= 0 ? "+" : "") + util::fixed(gap_pct, 2) + "%",
            bench::pct(best.result.eval_accuracy),
        });
    }
    std::cout << table.render() << "\n";

    std::cout <<
        "Shape check (paper): the NE gap versus the small-batch "
        "baseline grows with batch size\neven though the learning rate "
        "is re-tuned per batch size; gaps of ~0.1-0.2% already\nmatter "
        "for production recommendation models.\n";
    return 0;
}
