/**
 * @file
 * Shared helpers for the bench harnesses: consistent headers and
 * number formatting so every binary prints paper-style rows, plus the
 * `--trace out.json` hook that lets any bench dump a Chrome trace of
 * its run (wall-clock spans and, where the bench exercises the DES,
 * simulated-time spans on the same export).
 */
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "obs/trace.h"
#include "util/string_utils.h"

namespace recsim {
namespace bench {

/**
 * Enables tracing for the duration of a bench run when the binary is
 * invoked with `--trace <path>` (or `--trace=<path>`); on destruction
 * writes the Chrome trace JSON to that path and prints the text
 * summary. With no --trace flag this is a no-op, so benchmark numbers
 * stay honest.
 *
 * Usage (first lines of main):
 *   bench::TraceSession trace(argc, argv);
 */
class TraceSession
{
  public:
    TraceSession(int argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--trace" && i + 1 < argc)
                path_ = argv[i + 1];
            else if (arg.rfind("--trace=", 0) == 0)
                path_ = arg.substr(8);
        }
        if (path_.empty())
            return;
        obs::Tracer::global().reset();
        obs::Tracer::global().setEnabled(true);
        top_span_ = std::make_unique<obs::TraceSpan>("bench.main");
    }

    ~TraceSession()
    {
        if (path_.empty())
            return;
        top_span_.reset();
        obs::Tracer& tracer = obs::Tracer::global();
        tracer.setEnabled(false);
        if (tracer.writeChromeTrace(path_)) {
            std::cout << "\ntrace written to " << path_
                      << " (load in Perfetto or chrome://tracing)\n";
        } else {
            std::cerr << "failed to write trace to " << path_ << "\n";
        }
        std::cout << tracer.summary();
    }

    /** True when --trace was given and spans are being recorded. */
    bool active() const { return !path_.empty(); }

  private:
    std::string path_;
    std::unique_ptr<obs::TraceSpan> top_span_;
};

/** Print the standard bench banner. */
inline void
banner(const std::string& experiment, const std::string& paper_ref,
       const std::string& what)
{
    std::cout << "=== " << experiment << " — " << paper_ref << " ===\n"
              << what << "\n\n";
}

/** Format a throughput in k examples/s. */
inline std::string
kexps(double examples_per_second)
{
    return util::fixed(examples_per_second / 1000.0, 1) + "k";
}

/** Format a ratio like "2.25x". */
inline std::string
ratio(double value)
{
    return util::fixed(value, 2) + "x";
}

/** Format a percentage. */
inline std::string
pct(double fraction)
{
    return util::fixed(fraction * 100.0, 1) + "%";
}

} // namespace bench
} // namespace recsim
