/**
 * @file
 * Shared helpers for the bench harnesses: consistent headers and
 * number formatting so every binary prints paper-style rows.
 */
#pragma once

#include <iostream>
#include <string>

#include "util/string_utils.h"

namespace recsim {
namespace bench {

/** Print the standard bench banner. */
inline void
banner(const std::string& experiment, const std::string& paper_ref,
       const std::string& what)
{
    std::cout << "=== " << experiment << " — " << paper_ref << " ===\n"
              << what << "\n\n";
}

/** Format a throughput in k examples/s. */
inline std::string
kexps(double examples_per_second)
{
    return util::fixed(examples_per_second / 1000.0, 1) + "k";
}

/** Format a ratio like "2.25x". */
inline std::string
ratio(double value)
{
    return util::fixed(value, 2) + "x";
}

/** Format a percentage. */
inline std::string
pct(double fraction)
{
    return util::fixed(fraction * 100.0, 1) + "%";
}

} // namespace bench
} // namespace recsim
