/**
 * @file
 * Fig 2 reproduction: training frequency vs duration of the fleet's
 * machine-learning workloads, plus the 7x / 18-month growth of
 * recommendation training the paper reports.
 */
#include <iostream>
#include <map>

#include "bench_util.h"
#include "fleet/workload.h"
#include "stats/sample_set.h"
#include "util/random.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 2",
                  "Frequency and duration of ML training workloads",
                  "One month of sampled fleet runs per workload class.");

    util::Rng rng(2024);
    const auto classes = fleet::defaultWorkloads();
    const auto runs = fleet::sampleFleet(classes, 30.0, rng);

    std::map<std::string, stats::SampleSet> durations;
    std::map<std::string, int> counts;
    for (const auto& run : runs) {
        durations[run.workload].add(run.duration_hours);
        ++counts[run.workload];
    }

    util::TextTable table;
    table.header({"Workload", "Family", "Runs/30d", "Runs/day",
                  "Mean dur (h)", "p95 dur (h)"});
    for (const auto& cls : classes) {
        const auto& d = durations[cls.name];
        table.row({
            cls.name,
            cls.family == fleet::ModelFamily::Recommendation
                ? "recommendation"
                : cls.family == fleet::ModelFamily::Rnn ? "rnn" : "cnn",
            std::to_string(counts[cls.name]),
            util::fixed(counts[cls.name] / 30.0, 1),
            util::fixed(d.mean(), 1),
            util::fixed(d.quantile(0.95), 1),
        });
    }
    std::cout << table.render() << "\n";

    std::cout << "Recommendation training growth (paper: 7x over 18 "
                 "months):\n";
    util::TextTable growth;
    growth.header({"Months", "Relative recommendation runs/day"});
    for (double month : {0.0, 6.0, 12.0, 18.0}) {
        growth.row({util::fixed(month, 0),
                    bench::ratio(fleet::recommendationGrowth(1.0,
                                                             month))});
    }
    std::cout << growth.render() << "\n";
    std::cout << "Shape check: recommendation (news_feed, search) "
                 "dominates run counts;\nvision/translation run far "
                 "less frequently but longer per run.\n";
    return 0;
}
