/**
 * @file
 * Fig 10 reproduction: varying the number of dense and sparse features
 * on the CPU setup (single trainer + dense/sparse PS, batch 200) and
 * the GPU setup (one Big Basin, EMB on GPU memory, batch 1600/GPU),
 * with the system power-efficiency comparison (right panel).
 */
#include <iostream>

#include "bench_util.h"
#include "core/explorer.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 10",
                  "Throughput vs #dense x #sparse features + efficiency",
                  "Fixed MLP 512^3, hash 100k, lookups truncated to 32; "
                  "batch 200 (CPU) / 1600 per GPU.");

    core::DesignSpaceExplorer explorer;
    const std::vector<std::size_t> dense = {64, 256, 1024, 4096};
    const std::vector<std::size_t> sparse = {4, 16, 64, 128};
    const auto rows = explorer.featureSweep(dense, sparse);

    auto grid = [&](const char* title, auto value) {
        std::cout << title << "\n";
        util::TextTable table;
        std::vector<std::string> header = {"dense \\ sparse"};
        for (std::size_t s : sparse)
            header.push_back(std::to_string(s));
        table.header(header);
        std::size_t idx = 0;
        for (std::size_t d : dense) {
            std::vector<std::string> cells = {std::to_string(d)};
            for (std::size_t s = 0; s < sparse.size(); ++s)
                cells.push_back(value(rows[idx++]));
            table.row(cells);
        }
        std::cout << table.render() << "\n";
    };

    grid("CPU throughput (examples/s):", [](const core::SweepRow& row) {
        return bench::kexps(row.cpu.throughput);
    });
    grid("GPU throughput (examples/s):", [](const core::SweepRow& row) {
        return bench::kexps(row.gpu.throughput);
    });
    grid("GPU/CPU throughput ratio:", [](const core::SweepRow& row) {
        return bench::ratio(row.throughputRatio());
    });
    grid("GPU/CPU power-efficiency ratio:",
         [](const core::SweepRow& row) {
             return bench::ratio(row.efficiencyRatio());
         });

    std::cout <<
        "Shape check (paper): throughput decreases along both axes on "
        "both systems; GPU throughput\nis higher everywhere; the GPU "
        "efficiency advantage is largest for dense-heavy models and\n"
        "shrinks as sparse features (embedding work) dominate.\n";
    return 0;
}
