/**
 * @file
 * Table I reproduction: hardware platform details for the dual-socket
 * CPU server, Big Basin and the prototype Zion, as encoded in
 * recsim::hw. Prints the same rows as the paper plus the derived
 * quantities the cost models consume.
 */
#include <iostream>

#include "bench_util.h"

#include "util/logging.h"
#include "hw/platform.h"
#include "util/string_utils.h"
#include "util/units.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Table I", "Hardware platform details",
                  "Paper rows plus the derived rates the cost models "
                  "use.");

    const hw::Platform platforms[] = {
        hw::Platform::dualSocketCpu(),
        hw::Platform::bigBasin(),
        hw::Platform::zionPrototype(),
    };

    util::TextTable table;
    table.header({"", "CPU System", "Big Basin GPU", "Prototype Zion"});
    auto row = [&](const std::string& label, auto getter) {
        std::vector<std::string> cells = {label};
        for (const auto& p : platforms)
            cells.push_back(getter(p));
        table.row(cells);
    };

    row("Accelerators", [](const hw::Platform& p) {
        return p.num_gpus == 0 ? std::string("-")
            : util::format("{} NVIDIA V100", p.num_gpus);
    });
    row("Accelerator Memory", [](const hw::Platform& p) {
        return p.num_gpus == 0 ? std::string("-")
            : util::format("{} GB", p.gpu.mem_capacity / util::kGB);
    });
    row("System Memory", [](const hw::Platform& p) {
        return util::format("{} GB", p.host.mem_capacity / util::kGB);
    });
    row("System Mem BW", [](const hw::Platform& p) {
        return util::rateToString(p.host.mem_bandwidth);
    });
    row("CPU", [](const hw::Platform& p) {
        return util::format("{} sockets", p.num_cpu_sockets);
    });
    row("Interconnect", [](const hw::Platform& p) {
        return p.network.name;
    });
    row("GPU-GPU link", [](const hw::Platform& p) {
        return p.num_gpus == 0 ? std::string("-")
            : util::format("{} ({})", p.gpu_interconnect.name,
                           util::rateToString(
                               p.gpu_interconnect.bandwidth));
    });
    row("Power (provisioned)", [](const hw::Platform& p) {
        return util::format("{} W", p.power_watts);
    });
    row("GPU FP32 peak", [](const hw::Platform& p) {
        return p.num_gpus == 0 ? std::string("-")
            : util::format("{} TF/s x{}",
                           p.gpu.peak_flops / util::kTFLOPS, p.num_gpus);
    });
    row("HBM2 bandwidth", [](const hw::Platform& p) {
        return p.num_gpus == 0 ? std::string("-")
            : util::rateToString(p.gpu.mem_bandwidth);
    });

    std::cout << table.render() << "\n";
    std::cout << "Paper reference: CPU 256 GB / 25 Gbps; Big Basin 8x "
                 "V100 16/32 GB, 256 GB host, 100 Gbps;\n"
                 "Zion 8-socket ~2 TB @ ~1 TB/s, 4x IB 100 Gbps; Big "
                 "Basin power = 7.3x CPU server.\n";
    return 0;
}
