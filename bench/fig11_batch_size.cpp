/**
 * @file
 * Fig 11 reproduction: batch-size scaling of training throughput on the
 * CPU and GPU setups for several sparse/dense feature mixes. Fixed MLP
 * 512^3 and hash size 100k, as in the paper.
 */
#include <iostream>

#include "bench_util.h"
#include "core/explorer.h"
#include "sim/dist_sim.h"
#include "train/hogwild.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 11", "Batch-size scaling on CPU and GPU",
                  "Fixed MLP 512^3, hash 100k. CPU: single trainer + "
                  "PS. GPU: one Big Basin, EMB on GPU memory.");

    core::DesignSpaceExplorer explorer;
    const std::vector<std::size_t> batches =
        {50, 100, 200, 400, 800, 1600, 3200, 6400, 12800};

    struct Mix
    {
        std::size_t dense, sparse;
    };
    for (const Mix mix : {Mix{256, 8}, Mix{256, 32}, Mix{1024, 64}}) {
        std::cout << "dense=" << mix.dense << ", sparse=" << mix.sparse
                  << ":\n";
        const auto rows =
            explorer.batchSweep(mix.dense, mix.sparse, batches, batches);
        util::TextTable table;
        table.header({"batch", "CPU thr", "GPU thr", "CPU bottleneck",
                      "GPU bottleneck"});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            table.row({std::to_string(batches[i]),
                       bench::kexps(rows[i].cpu.throughput),
                       bench::kexps(rows[i].gpu.throughput),
                       rows[i].cpu.bottleneck, rows[i].gpu.bottleneck});
        }
        std::cout << table.render() << "\n";
    }

    std::cout <<
        "Shape check (paper): CPU throughput peaks at a moderate batch "
        "and declines beyond it\n(cache pressure); GPU throughput rises "
        "roughly linearly while launch overheads amortize,\nthen "
        "saturates once communication/compute dominate.\n";

    if (trace_session.active()) {
        // Populate the trace with the two timelines the summary is
        // about: real trainer threads (a short functional Hogwild run)
        // and simulated nodes (a short DES run of the CPU setup).
        {
            recsim::obs::TraceSpan span("fig11.hogwild_sample");
            const auto cfg =
                model::DlrmConfig::tinyReplica(8, 8, 2000, 16);
            data::DatasetConfig ds_cfg;
            ds_cfg.num_dense = cfg.num_dense;
            ds_cfg.sparse = cfg.sparse;
            data::SyntheticCtrDataset ds(ds_cfg);
            ds.materialize(4096);
            train::HogwildConfig hw;
            hw.num_threads = 4;
            hw.base.batch_size = 64;
            hw.base.epochs = 1;
            train::trainHogwild(cfg, ds, hw, 1024);
        }
        {
            recsim::obs::TraceSpan span("fig11.des_sample");
            core::TestSuiteParams params;
            sim::DistSimConfig sim_cfg;
            sim_cfg.model = model::DlrmConfig::testSuite(
                256, 32, params.hash_size, params.mlp_width,
                params.mlp_layers, params.mean_length,
                params.truncation);
            sim_cfg.system = params.cpuSystem();
            sim_cfg.system.hogwild_threads = 2;
            sim_cfg.measure_seconds = 0.02;
            sim::runDistSim(sim_cfg);
        }
    }
    return 0;
}
