/**
 * @file
 * Extension: mixed-dimension embeddings (Ginart et al., the paper's
 * memory-efficiency citation [17]). Per-table embedding widths scale
 * with access popularity; narrow tables project up to the shared width
 * through a learned Linear.
 *
 * Part 1 (system): sweeping the popularity exponent alpha shows the
 * capacity/feasibility effect on M3_prod (whose hundreds of GB blocked
 * Big Basin in the paper).
 *
 * Part 2 (functional): accuracy of a trained mixed-dim model versus the
 * full-width baseline on identical data.
 */
#include <iostream>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "model/dlrm.h"
#include "nn/optimizer.h"
#include "train/trainer.h"
#include "util/string_utils.h"
#include "util/units.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Extension: mixed-dimension embeddings",
                  "Popularity-scaled table widths (paper citation [17])",
                  "System capacity effect on M3_prod + functional "
                  "accuracy cost.");

    // ---- Part 1: alpha sweep on M3. ---------------------------------
    const auto m3 = model::DlrmConfig::m3Prod();
    util::TextTable table;
    table.header({"alpha", "emb size", "vs fp32 full", "BB gpu_memory",
                  "Zion host thr"});
    for (double alpha : {0.0, 0.3, 0.6, 1.0}) {
        const auto mixed = model::applyMixedDimensions(m3, alpha, 8);
        const auto bb = cost::IterationModel(
            mixed, cost::SystemConfig::bigBasinSetup(
                       EmbeddingPlacement::GpuMemory, 800)).estimate();
        const auto zion = cost::IterationModel(
            mixed, cost::SystemConfig::zionSetup(
                       EmbeddingPlacement::HostMemory, 800)).estimate();
        table.row({
            util::fixed(alpha, 1),
            util::bytesToString(mixed.embeddingBytes()),
            bench::pct(mixed.embeddingBytes() / m3.embeddingBytes()),
            bb.feasible ? bench::kexps(bb.throughput)
                        : "infeasible",
            zion.feasible ? bench::kexps(zion.throughput) : "-",
        });
    }
    std::cout << table.render() << "\n";

    // ---- Part 2: functional accuracy. --------------------------------
    auto tiny = model::DlrmConfig::tinyReplica(8, 12, 1500, 16);
    // Spread popularity so the rule has a tail to shrink.
    for (std::size_t i = 0; i < tiny.sparse.size(); ++i)
        tiny.sparse[i].mean_length = 1.0 + static_cast<double>(i);

    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = tiny.num_dense;
    ds_cfg.sparse = tiny.sparse;
    ds_cfg.seed = 321;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(24000);

    util::TextTable quality;
    quality.header({"alpha", "table bytes", "eval NE", "accuracy"});
    for (double alpha : {0.0, 0.4, 0.8}) {
        const auto cfg = model::applyMixedDimensions(tiny, alpha, 4);
        model::Dlrm dlrm(cfg, 7);
        nn::Adagrad opt(0.05f);
        for (std::size_t i = 0; i < 280; ++i) {
            const auto batch = ds.epochBatch(i * 64 % 18000, 64);
            dlrm.forwardBackward(batch);
            dlrm.step(opt);
        }
        train::TrainResult result;
        train::evaluateModel(dlrm, ds, 4000, result);
        quality.row({
            util::fixed(alpha, 1),
            util::bytesToString(cfg.embeddingBytes()),
            util::fixed(result.eval_ne, 4),
            bench::pct(result.eval_accuracy),
        });
    }
    std::cout << quality.render() << "\n";
    std::cout <<
        "Takeaway: popularity-scaled widths shrink M3 below the Big "
        "Basin HBM wall from alpha~0.3\n(complementing quantization), "
        "but unlike quantization the functional cost is visible:\n"
        "~1.5% NE regression at alpha 0.4 in this compressed regime. "
        "Against the paper's 0.1-0.2%\ntolerance, mixed dimensions "
        "demand careful per-model tuning — capacity relief is not "
        "free.\n";
    return 0;
}
