/**
 * @file
 * Fig 12 reproduction: embedding-table hash-size scaling. CPU training
 * (single 256 GB parameter server) stays flat until the capacity wall;
 * GPU training slows as tables fall out of cache and spread over more
 * GPUs, then hits the 8x16 GB capacity cliff.
 */
#include <iostream>

#include "bench_util.h"
#include "core/explorer.h"
#include "cost/iteration_model.h"
#include "util/logging.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 12", "Hash-size scaling on CPU and GPU",
                  "64 sparse features, MLP 512^3; one 256 GB CPU PS vs "
                  "one Big Basin (8x16 GB HBM2).");

    core::DesignSpaceExplorer explorer;
    const std::vector<uint64_t> hashes = {
        10000, 30000, 100000, 300000, 1000000, 3000000, 10000000,
        30000000, 100000000,
    };
    const auto rows = explorer.hashSweep(256, 64, hashes);

    const double cpu_base = rows[0].cpu.throughput;
    const double gpu_base = rows[0].gpu.throughput;

    util::TextTable table;
    table.header({"hash size", "table GB", "CPU rel", "GPU rel",
                  "mode", "GPU note"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto m = model::DlrmConfig::testSuite(256, 64, hashes[i]);
        const double gb = m.embeddingBytes() / 1e9;
        const auto& row = rows[i];
        std::string mode = "-", note;
        if (row.gpu.feasible) {
            cost::IterationModel im(
                m, core::TestSuiteParams{}.gpuSystem());
            mode = im.plan().replicated
                ? "replicated"
                : util::format("sharded x{}", im.plan().gpus_used);
            note = row.gpu.bottleneck;
        } else {
            note = "infeasible: exceeds GPU memory";
        }
        table.row({
            util::countToString(static_cast<double>(hashes[i])),
            util::fixed(gb, 1),
            row.cpu.feasible
                ? bench::ratio(row.cpu.throughput / cpu_base)
                : std::string("infeasible"),
            row.gpu.feasible
                ? bench::ratio(row.gpu.throughput / gpu_base)
                : std::string("infeasible"),
            mode, note,
        });
    }
    std::cout << table.render() << "\n";

    std::cout <<
        "Shape check (paper): CPU throughput is ~flat in hash size "
        "(until tables exceed the PS\nmemory); GPU throughput drops as "
        "tables leave cache and must spread across GPUs, and\nthe "
        "placement becomes infeasible once the total exceeds the HBM "
        "capacity.\n";
    return 0;
}
