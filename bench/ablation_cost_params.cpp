/**
 * @file
 * Ablation: sensitivity of the Table III conclusions to the cost
 * model's calibration constants. Each knob is halved and doubled in
 * turn; if the paper's qualitative result (M1 GPU wins / M2 parity /
 * M3 GPU loses) flips for a perturbation, the conclusion depends on
 * the calibration rather than the architecture — the honesty check
 * DESIGN.md promises.
 */
#include <iostream>

#include "bench_util.h"
#include "util/logging.h"
#include "cost/iteration_model.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

namespace {

struct Ratios
{
    double m1, m2, m3;
};

Ratios
tableIII(const cost::CostParams& params)
{
    auto ratio = [&](const model::DlrmConfig& m,
                     const cost::SystemConfig& cpu,
                     const cost::SystemConfig& gpu) {
        const double c =
            cost::IterationModel(m, cpu, params).estimate().throughput;
        const double g =
            cost::IterationModel(m, gpu, params).estimate().throughput;
        return c > 0.0 ? g / c : 0.0;
    };
    auto m3_gpu = cost::SystemConfig::bigBasinSetup(
        EmbeddingPlacement::RemotePs, 800, 8);
    m3_gpu.hogwild_threads = 4;
    return {
        ratio(model::DlrmConfig::m1Prod(),
              cost::SystemConfig::cpuSetup(6, 8, 2, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 1600)),
        ratio(model::DlrmConfig::m2Prod(),
              cost::SystemConfig::cpuSetup(20, 16, 4, 200, 1),
              cost::SystemConfig::bigBasinSetup(
                  EmbeddingPlacement::GpuMemory, 3200)),
        ratio(model::DlrmConfig::m3Prod(),
              cost::SystemConfig::cpuSetup(8, 8, 2, 200, 4), m3_gpu),
    };
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Ablation: calibration sensitivity",
                  "Table III ratios under perturbed CostParams",
                  "Each knob x0.5 and x2; conclusion holds if M1 > 1, "
                  "M2 in [0.5, 1.5], M3 < 1.");

    util::TextTable table;
    table.header({"perturbation", "M1 ratio", "M2 ratio", "M3 ratio",
                  "conclusion holds?"});

    auto add = [&](const std::string& label,
                   const cost::CostParams& params) {
        const Ratios r = tableIII(params);
        const bool holds = r.m1 > 1.0 && r.m2 > 0.5 && r.m2 < 1.5 &&
            r.m3 < 1.0;
        table.row({label, bench::ratio(r.m1), bench::ratio(r.m2),
                   bench::ratio(r.m3), holds ? "yes" : "NO"});
    };

    add("baseline", cost::CostParams{});

    struct Knob
    {
        const char* name;
        double cost::CostParams::* field;
    };
    const Knob knobs[] = {
        {"cpu_mlp_efficiency", &cost::CostParams::cpu_mlp_efficiency},
        {"gpu_mlp_efficiency", &cost::CostParams::gpu_mlp_efficiency},
        {"cpu_iteration_overhead",
         &cost::CostParams::cpu_iteration_overhead},
        {"gpu_iteration_overhead",
         &cost::CostParams::gpu_iteration_overhead},
        {"host_cpu_per_example",
         &cost::CostParams::host_cpu_per_example},
        {"cpu_per_lookup_overhead",
         &cost::CostParams::cpu_per_lookup_overhead},
        {"serialization_bw_per_socket",
         &cost::CostParams::serialization_bw_per_socket},
        {"network_goodput", &cost::CostParams::network_goodput},
        {"emb_train_bytes_multiplier",
         &cost::CostParams::emb_train_bytes_multiplier},
        {"remote_inflight_rpcs",
         &cost::CostParams::remote_inflight_rpcs},
    };
    for (const auto& knob : knobs) {
        for (double factor : {0.5, 2.0}) {
            cost::CostParams params;
            params.*knob.field *= factor;
            if (knob.name == std::string("network_goodput"))
                params.*knob.field = std::min(params.*knob.field, 1.0);
            add(util::format("{} x{}", knob.name, factor), params);
        }
    }
    std::cout << table.render() << "\n";
    std::cout <<
        "Reading: the Table III ordering survives 2x perturbations of "
        "nearly every calibration\nconstant (levels move, the story "
        "does not). The one sensitive knob is the CPU per-lookup\n"
        "overhead: doubling it cripples the lookup-heavy M3 CPU "
        "baseline enough that the GPU\nsetup wins — i.e. the M3 "
        "conclusion genuinely hinges on how efficiently CPU trainers\n"
        "handle sparse features, which is exactly the axis the paper "
        "emphasizes.\n";
    return 0;
}
