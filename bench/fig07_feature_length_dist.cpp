/**
 * @file
 * Fig 7 reproduction: mean sparse-feature-length distributions for
 * M1/M2/M3 with Gaussian-KDE curves — the power-law-like long tails of
 * per-table lookup counts.
 */
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "model/config.h"
#include "stats/histogram.h"
#include "stats/sample_set.h"
#include "stats/kde.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 7",
                  "Mean sparse feature length distributions (with KDE)",
                  "Distribution of per-table mean lookup counts for the "
                  "production model configs.");

    for (const auto& m : {model::DlrmConfig::m1Prod(),
                          model::DlrmConfig::m2Prod(),
                          model::DlrmConfig::m3Prod()}) {
        std::vector<double> lengths;
        for (const auto& s : m.sparse)
            lengths.push_back(s.mean_length);

        std::cout << m.name << " (" << lengths.size() << " tables):\n";
        stats::Histogram h(0.0, 200.0, 10);
        for (double l : lengths)
            h.add(l);
        std::cout << h.render(36);

        const stats::GaussianKde kde(lengths);
        std::cout << "KDE (density x 1000 at length):";
        for (double x : {5.0, 15.0, 30.0, 60.0, 120.0}) {
            std::cout << "  " << util::fixed(x, 0) << ":"
                      << util::fixed(kde.density(x) * 1000.0, 2);
        }
        const stats::SampleSet samples(lengths);
        std::cout << "\nsummary: " << samples.describe(1) << "\n\n";
    }

    std::cout <<
        "Shape check (paper): long-tailed (power-law-like) "
        "distributions; a few tables are\naccessed much more often "
        "than the rest; means ~28 / ~17 / ~49 for M1/M2/M3.\n";
    return 0;
}
