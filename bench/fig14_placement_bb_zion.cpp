/**
 * @file
 * Fig 14 reproduction: M2_prod embedding-placement comparison on
 * Big Basin vs prototype Zion — GPU memory, host (system) memory, and
 * remote parameter servers — with the iteration-time breakdowns that
 * explain each ordering.
 */
#include <iostream>

#include "bench_util.h"
#include "cost/iteration_model.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 14", "Embedding placements on Big Basin vs Zion",
                  "M2_prod, batch 3200 per GPU; remote uses 8 sparse "
                  "parameter servers.");

    const auto m2 = model::DlrmConfig::m2Prod();
    const EmbeddingPlacement placements[] = {
        EmbeddingPlacement::GpuMemory,
        EmbeddingPlacement::HostMemory,
        EmbeddingPlacement::RemotePs,
    };

    util::TextTable table;
    table.header({"Placement", "BigBasin thr", "Zion thr",
                  "BB bottleneck", "Zion bottleneck"});
    std::vector<cost::IterationEstimate> bb_ests, zion_ests;
    for (auto pl : placements) {
        const std::size_t ps = pl == EmbeddingPlacement::RemotePs ? 8 : 0;
        const auto bb = cost::IterationModel(
            m2, cost::SystemConfig::bigBasinSetup(pl, 3200, ps))
            .estimate();
        const auto zion = cost::IterationModel(
            m2, cost::SystemConfig::zionSetup(pl, 3200, ps)).estimate();
        bb_ests.push_back(bb);
        zion_ests.push_back(zion);
        table.row({placement::toString(pl),
                   bb.feasible ? bench::kexps(bb.throughput) : "n/f",
                   zion.feasible ? bench::kexps(zion.throughput) : "n/f",
                   bb.bottleneck, zion.bottleneck});
    }
    std::cout << table.render() << "\n";

    std::cout << "Iteration-time breakdown (ms), Big Basin "
                 "gpu_memory vs Zion gpu_memory:\n";
    util::TextTable breakdown;
    breakdown.header({"phase", "BB gpu_memory", "Zion gpu_memory",
                      "Zion host_memory"});
    for (std::size_t i = 0; i < bb_ests[0].breakdown.size(); ++i) {
        breakdown.row({
            bb_ests[0].breakdown[i].name,
            util::fixed(bb_ests[0].breakdown[i].seconds * 1e3, 2),
            util::fixed(zion_ests[0].breakdown[i].seconds * 1e3, 2),
            util::fixed(zion_ests[1].breakdown[i].seconds * 1e3, 2),
        });
    }
    std::cout << breakdown.render() << "\n";

    std::cout <<
        "Shape check (paper): with GPU-memory placement Big Basin is "
        "best (prototype Zion lacks\ndirect GPU-GPU links, so "
        "all-to-all/allreduce stage through the host); with system-\n"
        "memory placement Zion is best (1 TB/s host memory); remote "
        "placement trails on both,\nwith Zion only slightly ahead of "
        "Big Basin.\n";
    return 0;
}
