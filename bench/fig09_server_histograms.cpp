/**
 * @file
 * Fig 9 reproduction: histograms of the number of trainer and parameter
 * servers used by a month of CPU training workflows — trainer counts
 * concentrate on a modal value (>40% of workflows), PS counts spread
 * widely with the embedding-memory footprint.
 */
#include <iostream>

#include "bench_util.h"
#include "fleet/fleet_sim.h"
#include "stats/histogram.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Fig 9",
                  "Trainer / parameter-server counts over a month",
                  "2000 sampled CPU training workflows.");

    fleet::ServerCountStudyConfig cfg;
    const auto dists = fleet::serverCountStudy(cfg);

    std::cout << "Number of trainers:\n";
    stats::Histogram trainers(0.0, 60.0, 12);
    std::size_t modal = 0;
    for (double v : dists.trainers.values()) {
        trainers.add(v);
        modal += v == static_cast<double>(cfg.modal_trainers);
    }
    std::cout << trainers.render(40);
    std::cout << "modal count " << cfg.modal_trainers << " used by "
              << bench::pct(static_cast<double>(modal) /
                            static_cast<double>(dists.trainers.size()))
              << " of workflows (paper: >40%)\n\n";

    std::cout << "Number of parameter servers:\n";
    stats::Histogram ps(0.0, 40.0, 10);
    for (double v : dists.parameter_servers.values())
        ps.add(v);
    std::cout << ps.render(40);
    std::cout << "trainers:  " << dists.trainers.describe(1) << "\n";
    std::cout << "param srv: " << dists.parameter_servers.describe(1)
              << "\n\n";

    std::cout <<
        "Shape check (paper): trainer counts cluster on a de-facto "
        "value; parameter-server\ncounts vary greatly because memory "
        "requirements change as features are added/removed.\n";
    return 0;
}
