/**
 * @file
 * Ablation: gradient-synchronization settings (Section III-A.6). Two
 * sides of the EASGD sync-period dial:
 *  - system side (cost model): rarer syncs unload the dense parameter
 *    server and the trainer NICs;
 *  - model side (functional training): rarer syncs let replicas drift,
 *    degrading the center model's NE.
 */
#include <iostream>

#include "bench_util.h"
#include "util/logging.h"
#include "cost/iteration_model.h"
#include "train/easgd.h"
#include "train/shadow_sync.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::banner("Ablation: EASGD sync period",
                  "Sec III-A.6 gradient synchronization",
                  "System effect (M2 on its CPU fleet) + functional "
                  "quality effect (4 workers).");

    // ---- System side. -----------------------------------------------
    const auto m2 = model::DlrmConfig::m2Prod();
    util::TextTable sys_table;
    sys_table.header({"sync period", "throughput", "dense-PS util",
                      "trainer NIC util"});
    for (std::size_t period : {1, 4, 16, 64, 256}) {
        auto sys = cost::SystemConfig::cpuSetup(20, 16, 1, 200, 1);
        sys.easgd_sync_period = period;
        const auto est = cost::IterationModel(m2, sys).estimate();
        sys_table.row({
            std::to_string(period),
            bench::kexps(est.throughput),
            bench::pct(est.util.dense_ps_network),
            bench::pct(est.util.trainer_network),
        });
    }
    std::cout << sys_table.render() << "\n";

    // ---- Model-quality side (functional). ---------------------------
    const auto tiny = model::DlrmConfig::tinyReplica(4, 8, 500, 8);
    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = tiny.num_dense;
    ds_cfg.sparse = tiny.sparse;
    ds_cfg.seed = 55;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(20000);

    util::TextTable q_table;
    q_table.header({"sync period", "center eval NE", "accuracy"});
    for (std::size_t period : {2, 8, 32, 128}) {
        train::EasgdConfig cfg;
        cfg.base.batch_size = 64;
        cfg.base.learning_rate = 0.05f;
        cfg.base.epochs = 2;
        cfg.num_workers = 4;
        cfg.sync_period = period;
        const auto result = train::trainEasgd(tiny, ds, cfg, 4000);
        q_table.row({std::to_string(period),
                     util::fixed(result.eval_ne, 4),
                     bench::pct(result.eval_accuracy)});
    }
    std::cout << q_table.render() << "\n";

    // ShadowSync comparison: sync off the critical path entirely.
    {
        train::ShadowSyncConfig cfg;
        cfg.base.batch_size = 64;
        cfg.base.learning_rate = 0.05f;
        cfg.base.epochs = 2;
        cfg.num_workers = 4;
        const auto result = train::trainShadowSync(tiny, ds, cfg, 4000);
        std::cout << "ShadowSync (background sync, workers never "
                     "block): NE "
                  << util::fixed(result.eval_ne, 4) << ", accuracy "
                  << bench::pct(result.eval_accuracy) << "\n\n";
    }

    std::cout <<
        "Takeaway: the sync period trades dense-PS/network load "
        "(system side, monotone relief)\nagainst center-model quality "
        "(functional side, NE degrades as replicas drift) — the\n"
        "throughput/quality tension Sections III-A.6 and VI-C "
        "describe.\n";
    return 0;
}
