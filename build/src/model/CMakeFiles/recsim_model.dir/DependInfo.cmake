
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/recsim_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/recsim_model.dir/config.cc.o.d"
  "/root/repo/src/model/dlrm.cc" "src/model/CMakeFiles/recsim_model.dir/dlrm.cc.o" "gcc" "src/model/CMakeFiles/recsim_model.dir/dlrm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/recsim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/recsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recsim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
