file(REMOVE_RECURSE
  "librecsim_model.a"
)
