file(REMOVE_RECURSE
  "CMakeFiles/recsim_model.dir/config.cc.o"
  "CMakeFiles/recsim_model.dir/config.cc.o.d"
  "CMakeFiles/recsim_model.dir/dlrm.cc.o"
  "CMakeFiles/recsim_model.dir/dlrm.cc.o.d"
  "librecsim_model.a"
  "librecsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
