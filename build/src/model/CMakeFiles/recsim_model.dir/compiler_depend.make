# Empty compiler generated dependencies file for recsim_model.
# This may be replaced when dependencies are built.
