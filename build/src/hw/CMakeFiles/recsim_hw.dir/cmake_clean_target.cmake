file(REMOVE_RECURSE
  "librecsim_hw.a"
)
