file(REMOVE_RECURSE
  "CMakeFiles/recsim_hw.dir/platform.cc.o"
  "CMakeFiles/recsim_hw.dir/platform.cc.o.d"
  "librecsim_hw.a"
  "librecsim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
