# Empty dependencies file for recsim_hw.
# This may be replaced when dependencies are built.
