# Empty dependencies file for recsim_stats.
# This may be replaced when dependencies are built.
