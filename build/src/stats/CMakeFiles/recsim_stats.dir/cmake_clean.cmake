file(REMOVE_RECURSE
  "CMakeFiles/recsim_stats.dir/histogram.cc.o"
  "CMakeFiles/recsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/recsim_stats.dir/kde.cc.o"
  "CMakeFiles/recsim_stats.dir/kde.cc.o.d"
  "CMakeFiles/recsim_stats.dir/running_stat.cc.o"
  "CMakeFiles/recsim_stats.dir/running_stat.cc.o.d"
  "CMakeFiles/recsim_stats.dir/sample_set.cc.o"
  "CMakeFiles/recsim_stats.dir/sample_set.cc.o.d"
  "librecsim_stats.a"
  "librecsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
