file(REMOVE_RECURSE
  "librecsim_stats.a"
)
