file(REMOVE_RECURSE
  "librecsim_fleet.a"
)
