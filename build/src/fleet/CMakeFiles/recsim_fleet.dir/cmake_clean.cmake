file(REMOVE_RECURSE
  "CMakeFiles/recsim_fleet.dir/fleet_sim.cc.o"
  "CMakeFiles/recsim_fleet.dir/fleet_sim.cc.o.d"
  "CMakeFiles/recsim_fleet.dir/workload.cc.o"
  "CMakeFiles/recsim_fleet.dir/workload.cc.o.d"
  "librecsim_fleet.a"
  "librecsim_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
