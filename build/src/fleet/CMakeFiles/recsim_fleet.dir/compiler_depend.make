# Empty compiler generated dependencies file for recsim_fleet.
# This may be replaced when dependencies are built.
