file(REMOVE_RECURSE
  "librecsim_data.a"
)
