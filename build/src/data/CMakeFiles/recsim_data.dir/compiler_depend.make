# Empty compiler generated dependencies file for recsim_data.
# This may be replaced when dependencies are built.
