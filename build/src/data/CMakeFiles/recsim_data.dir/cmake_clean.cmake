file(REMOVE_RECURSE
  "CMakeFiles/recsim_data.dir/dataset.cc.o"
  "CMakeFiles/recsim_data.dir/dataset.cc.o.d"
  "CMakeFiles/recsim_data.dir/spec.cc.o"
  "CMakeFiles/recsim_data.dir/spec.cc.o.d"
  "CMakeFiles/recsim_data.dir/teacher.cc.o"
  "CMakeFiles/recsim_data.dir/teacher.cc.o.d"
  "librecsim_data.a"
  "librecsim_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
