file(REMOVE_RECURSE
  "librecsim_nn.a"
)
