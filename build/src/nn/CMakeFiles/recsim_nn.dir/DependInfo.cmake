
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/embedding_bag.cc" "src/nn/CMakeFiles/recsim_nn.dir/embedding_bag.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/embedding_bag.cc.o.d"
  "/root/repo/src/nn/interaction.cc" "src/nn/CMakeFiles/recsim_nn.dir/interaction.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/interaction.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/recsim_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/recsim_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/recsim_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/recsim_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/quantized_embedding.cc" "src/nn/CMakeFiles/recsim_nn.dir/quantized_embedding.cc.o" "gcc" "src/nn/CMakeFiles/recsim_nn.dir/quantized_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/recsim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
