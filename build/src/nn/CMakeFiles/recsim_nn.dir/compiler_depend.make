# Empty compiler generated dependencies file for recsim_nn.
# This may be replaced when dependencies are built.
