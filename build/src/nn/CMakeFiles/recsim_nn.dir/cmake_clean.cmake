file(REMOVE_RECURSE
  "CMakeFiles/recsim_nn.dir/embedding_bag.cc.o"
  "CMakeFiles/recsim_nn.dir/embedding_bag.cc.o.d"
  "CMakeFiles/recsim_nn.dir/interaction.cc.o"
  "CMakeFiles/recsim_nn.dir/interaction.cc.o.d"
  "CMakeFiles/recsim_nn.dir/linear.cc.o"
  "CMakeFiles/recsim_nn.dir/linear.cc.o.d"
  "CMakeFiles/recsim_nn.dir/loss.cc.o"
  "CMakeFiles/recsim_nn.dir/loss.cc.o.d"
  "CMakeFiles/recsim_nn.dir/mlp.cc.o"
  "CMakeFiles/recsim_nn.dir/mlp.cc.o.d"
  "CMakeFiles/recsim_nn.dir/optimizer.cc.o"
  "CMakeFiles/recsim_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/recsim_nn.dir/quantized_embedding.cc.o"
  "CMakeFiles/recsim_nn.dir/quantized_embedding.cc.o.d"
  "librecsim_nn.a"
  "librecsim_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
