file(REMOVE_RECURSE
  "CMakeFiles/recsim_train.dir/checkpoint.cc.o"
  "CMakeFiles/recsim_train.dir/checkpoint.cc.o.d"
  "CMakeFiles/recsim_train.dir/easgd.cc.o"
  "CMakeFiles/recsim_train.dir/easgd.cc.o.d"
  "CMakeFiles/recsim_train.dir/hogwild.cc.o"
  "CMakeFiles/recsim_train.dir/hogwild.cc.o.d"
  "CMakeFiles/recsim_train.dir/shadow_sync.cc.o"
  "CMakeFiles/recsim_train.dir/shadow_sync.cc.o.d"
  "CMakeFiles/recsim_train.dir/sweep.cc.o"
  "CMakeFiles/recsim_train.dir/sweep.cc.o.d"
  "CMakeFiles/recsim_train.dir/trainer.cc.o"
  "CMakeFiles/recsim_train.dir/trainer.cc.o.d"
  "librecsim_train.a"
  "librecsim_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
