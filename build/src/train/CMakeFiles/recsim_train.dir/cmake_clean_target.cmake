file(REMOVE_RECURSE
  "librecsim_train.a"
)
