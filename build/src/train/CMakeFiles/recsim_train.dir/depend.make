# Empty dependencies file for recsim_train.
# This may be replaced when dependencies are built.
