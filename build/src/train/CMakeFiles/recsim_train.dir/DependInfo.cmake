
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/checkpoint.cc" "src/train/CMakeFiles/recsim_train.dir/checkpoint.cc.o" "gcc" "src/train/CMakeFiles/recsim_train.dir/checkpoint.cc.o.d"
  "/root/repo/src/train/easgd.cc" "src/train/CMakeFiles/recsim_train.dir/easgd.cc.o" "gcc" "src/train/CMakeFiles/recsim_train.dir/easgd.cc.o.d"
  "/root/repo/src/train/hogwild.cc" "src/train/CMakeFiles/recsim_train.dir/hogwild.cc.o" "gcc" "src/train/CMakeFiles/recsim_train.dir/hogwild.cc.o.d"
  "/root/repo/src/train/shadow_sync.cc" "src/train/CMakeFiles/recsim_train.dir/shadow_sync.cc.o" "gcc" "src/train/CMakeFiles/recsim_train.dir/shadow_sync.cc.o.d"
  "/root/repo/src/train/sweep.cc" "src/train/CMakeFiles/recsim_train.dir/sweep.cc.o" "gcc" "src/train/CMakeFiles/recsim_train.dir/sweep.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/recsim_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/recsim_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/recsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/recsim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/recsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recsim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
