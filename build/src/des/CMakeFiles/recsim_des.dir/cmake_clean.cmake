file(REMOVE_RECURSE
  "CMakeFiles/recsim_des.dir/event_queue.cc.o"
  "CMakeFiles/recsim_des.dir/event_queue.cc.o.d"
  "CMakeFiles/recsim_des.dir/sim_object.cc.o"
  "CMakeFiles/recsim_des.dir/sim_object.cc.o.d"
  "librecsim_des.a"
  "librecsim_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
