# Empty compiler generated dependencies file for recsim_des.
# This may be replaced when dependencies are built.
