file(REMOVE_RECURSE
  "librecsim_des.a"
)
