file(REMOVE_RECURSE
  "CMakeFiles/recsim_placement.dir/partitioner.cc.o"
  "CMakeFiles/recsim_placement.dir/partitioner.cc.o.d"
  "CMakeFiles/recsim_placement.dir/placement.cc.o"
  "CMakeFiles/recsim_placement.dir/placement.cc.o.d"
  "librecsim_placement.a"
  "librecsim_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
