# Empty compiler generated dependencies file for recsim_placement.
# This may be replaced when dependencies are built.
