file(REMOVE_RECURSE
  "librecsim_placement.a"
)
