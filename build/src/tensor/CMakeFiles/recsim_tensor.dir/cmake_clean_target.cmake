file(REMOVE_RECURSE
  "librecsim_tensor.a"
)
