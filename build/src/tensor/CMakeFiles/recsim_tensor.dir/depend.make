# Empty dependencies file for recsim_tensor.
# This may be replaced when dependencies are built.
