file(REMOVE_RECURSE
  "CMakeFiles/recsim_tensor.dir/ops.cc.o"
  "CMakeFiles/recsim_tensor.dir/ops.cc.o.d"
  "CMakeFiles/recsim_tensor.dir/tensor.cc.o"
  "CMakeFiles/recsim_tensor.dir/tensor.cc.o.d"
  "librecsim_tensor.a"
  "librecsim_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
