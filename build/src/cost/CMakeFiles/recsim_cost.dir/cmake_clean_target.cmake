file(REMOVE_RECURSE
  "librecsim_cost.a"
)
