# Empty dependencies file for recsim_cost.
# This may be replaced when dependencies are built.
