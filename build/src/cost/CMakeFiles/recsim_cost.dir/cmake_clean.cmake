file(REMOVE_RECURSE
  "CMakeFiles/recsim_cost.dir/cache_model.cc.o"
  "CMakeFiles/recsim_cost.dir/cache_model.cc.o.d"
  "CMakeFiles/recsim_cost.dir/iteration_model.cc.o"
  "CMakeFiles/recsim_cost.dir/iteration_model.cc.o.d"
  "CMakeFiles/recsim_cost.dir/system_config.cc.o"
  "CMakeFiles/recsim_cost.dir/system_config.cc.o.d"
  "librecsim_cost.a"
  "librecsim_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
