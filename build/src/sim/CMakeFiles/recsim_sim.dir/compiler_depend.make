# Empty compiler generated dependencies file for recsim_sim.
# This may be replaced when dependencies are built.
