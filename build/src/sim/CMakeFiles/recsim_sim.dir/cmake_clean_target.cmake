file(REMOVE_RECURSE
  "librecsim_sim.a"
)
