file(REMOVE_RECURSE
  "CMakeFiles/recsim_sim.dir/dist_sim.cc.o"
  "CMakeFiles/recsim_sim.dir/dist_sim.cc.o.d"
  "librecsim_sim.a"
  "librecsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
