file(REMOVE_RECURSE
  "CMakeFiles/recsim_core.dir/estimator.cc.o"
  "CMakeFiles/recsim_core.dir/estimator.cc.o.d"
  "CMakeFiles/recsim_core.dir/explorer.cc.o"
  "CMakeFiles/recsim_core.dir/explorer.cc.o.d"
  "librecsim_core.a"
  "librecsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
