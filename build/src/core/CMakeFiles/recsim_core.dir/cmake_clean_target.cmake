file(REMOVE_RECURSE
  "librecsim_core.a"
)
