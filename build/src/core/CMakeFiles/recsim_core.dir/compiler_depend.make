# Empty compiler generated dependencies file for recsim_core.
# This may be replaced when dependencies are built.
