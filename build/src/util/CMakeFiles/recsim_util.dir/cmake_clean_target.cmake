file(REMOVE_RECURSE
  "librecsim_util.a"
)
