file(REMOVE_RECURSE
  "CMakeFiles/recsim_util.dir/logging.cc.o"
  "CMakeFiles/recsim_util.dir/logging.cc.o.d"
  "CMakeFiles/recsim_util.dir/random.cc.o"
  "CMakeFiles/recsim_util.dir/random.cc.o.d"
  "CMakeFiles/recsim_util.dir/string_utils.cc.o"
  "CMakeFiles/recsim_util.dir/string_utils.cc.o.d"
  "librecsim_util.a"
  "librecsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
