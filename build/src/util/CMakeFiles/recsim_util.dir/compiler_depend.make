# Empty compiler generated dependencies file for recsim_util.
# This may be replaced when dependencies are built.
