file(REMOVE_RECURSE
  "CMakeFiles/train_ctr_model.dir/train_ctr_model.cpp.o"
  "CMakeFiles/train_ctr_model.dir/train_ctr_model.cpp.o.d"
  "train_ctr_model"
  "train_ctr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_ctr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
