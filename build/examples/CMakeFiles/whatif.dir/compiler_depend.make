# Empty compiler generated dependencies file for whatif.
# This may be replaced when dependencies are built.
