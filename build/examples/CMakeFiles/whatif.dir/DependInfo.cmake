
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/whatif.cpp" "examples/CMakeFiles/whatif.dir/whatif.cpp.o" "gcc" "examples/CMakeFiles/whatif.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/recsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/recsim_train.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/recsim_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/recsim_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/recsim_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/recsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/recsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/recsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/recsim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/recsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recsim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
