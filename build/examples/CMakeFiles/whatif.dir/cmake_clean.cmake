file(REMOVE_RECURSE
  "CMakeFiles/whatif.dir/whatif.cpp.o"
  "CMakeFiles/whatif.dir/whatif.cpp.o.d"
  "whatif"
  "whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
