# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_fleet[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_mixed_dims[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
