file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_dims.dir/test_mixed_dims.cc.o"
  "CMakeFiles/test_mixed_dims.dir/test_mixed_dims.cc.o.d"
  "test_mixed_dims"
  "test_mixed_dims.pdb"
  "test_mixed_dims[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
