# Empty dependencies file for test_mixed_dims.
# This may be replaced when dependencies are built.
