file(REMOVE_RECURSE
  "CMakeFiles/fig14_placement_bb_zion.dir/fig14_placement_bb_zion.cpp.o"
  "CMakeFiles/fig14_placement_bb_zion.dir/fig14_placement_bb_zion.cpp.o.d"
  "fig14_placement_bb_zion"
  "fig14_placement_bb_zion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_placement_bb_zion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
