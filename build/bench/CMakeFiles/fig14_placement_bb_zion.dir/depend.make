# Empty dependencies file for fig14_placement_bb_zion.
# This may be replaced when dependencies are built.
