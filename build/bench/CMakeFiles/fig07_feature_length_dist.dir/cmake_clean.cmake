file(REMOVE_RECURSE
  "CMakeFiles/fig07_feature_length_dist.dir/fig07_feature_length_dist.cpp.o"
  "CMakeFiles/fig07_feature_length_dist.dir/fig07_feature_length_dist.cpp.o.d"
  "fig07_feature_length_dist"
  "fig07_feature_length_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_feature_length_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
