# Empty compiler generated dependencies file for fig07_feature_length_dist.
# This may be replaced when dependencies are built.
