# Empty compiler generated dependencies file for fig08_placement_gallery.
# This may be replaced when dependencies are built.
