file(REMOVE_RECURSE
  "CMakeFiles/fig06_hash_vs_length.dir/fig06_hash_vs_length.cpp.o"
  "CMakeFiles/fig06_hash_vs_length.dir/fig06_hash_vs_length.cpp.o.d"
  "fig06_hash_vs_length"
  "fig06_hash_vs_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_hash_vs_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
