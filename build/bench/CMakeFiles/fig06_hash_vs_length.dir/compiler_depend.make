# Empty compiler generated dependencies file for fig06_hash_vs_length.
# This may be replaced when dependencies are built.
