file(REMOVE_RECURSE
  "CMakeFiles/ext_scaleout.dir/ext_scaleout.cpp.o"
  "CMakeFiles/ext_scaleout.dir/ext_scaleout.cpp.o.d"
  "ext_scaleout"
  "ext_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
