# Empty dependencies file for ext_scaleout.
# This may be replaced when dependencies are built.
