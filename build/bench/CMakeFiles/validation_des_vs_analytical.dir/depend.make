# Empty dependencies file for validation_des_vs_analytical.
# This may be replaced when dependencies are built.
