file(REMOVE_RECURSE
  "CMakeFiles/validation_des_vs_analytical.dir/validation_des_vs_analytical.cpp.o"
  "CMakeFiles/validation_des_vs_analytical.dir/validation_des_vs_analytical.cpp.o.d"
  "validation_des_vs_analytical"
  "validation_des_vs_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_des_vs_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
