file(REMOVE_RECURSE
  "CMakeFiles/fig05_utilization_dist.dir/fig05_utilization_dist.cpp.o"
  "CMakeFiles/fig05_utilization_dist.dir/fig05_utilization_dist.cpp.o.d"
  "fig05_utilization_dist"
  "fig05_utilization_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_utilization_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
