# Empty dependencies file for table3_cpu_gpu_comparison.
# This may be replaced when dependencies are built.
