# Empty dependencies file for fig02_workload_fleet.
# This may be replaced when dependencies are built.
