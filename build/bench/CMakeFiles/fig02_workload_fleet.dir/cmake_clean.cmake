file(REMOVE_RECURSE
  "CMakeFiles/fig02_workload_fleet.dir/fig02_workload_fleet.cpp.o"
  "CMakeFiles/fig02_workload_fleet.dir/fig02_workload_fleet.cpp.o.d"
  "fig02_workload_fleet"
  "fig02_workload_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_workload_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
