file(REMOVE_RECURSE
  "CMakeFiles/fig12_hash_size.dir/fig12_hash_size.cpp.o"
  "CMakeFiles/fig12_hash_size.dir/fig12_hash_size.cpp.o.d"
  "fig12_hash_size"
  "fig12_hash_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hash_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
