# Empty compiler generated dependencies file for fig12_hash_size.
# This may be replaced when dependencies are built.
