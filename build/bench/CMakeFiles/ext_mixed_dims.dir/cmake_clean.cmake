file(REMOVE_RECURSE
  "CMakeFiles/ext_mixed_dims.dir/ext_mixed_dims.cpp.o"
  "CMakeFiles/ext_mixed_dims.dir/ext_mixed_dims.cpp.o.d"
  "ext_mixed_dims"
  "ext_mixed_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
