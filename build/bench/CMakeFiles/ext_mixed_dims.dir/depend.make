# Empty dependencies file for ext_mixed_dims.
# This may be replaced when dependencies are built.
