# Empty dependencies file for fig10_feature_sweep.
# This may be replaced when dependencies are built.
