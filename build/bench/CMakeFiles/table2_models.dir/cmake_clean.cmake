file(REMOVE_RECURSE
  "CMakeFiles/table2_models.dir/table2_models.cpp.o"
  "CMakeFiles/table2_models.dir/table2_models.cpp.o.d"
  "table2_models"
  "table2_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
