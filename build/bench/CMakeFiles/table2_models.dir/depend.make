# Empty dependencies file for table2_models.
# This may be replaced when dependencies are built.
