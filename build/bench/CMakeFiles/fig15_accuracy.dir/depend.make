# Empty dependencies file for fig15_accuracy.
# This may be replaced when dependencies are built.
