file(REMOVE_RECURSE
  "CMakeFiles/fig15_accuracy.dir/fig15_accuracy.cpp.o"
  "CMakeFiles/fig15_accuracy.dir/fig15_accuracy.cpp.o.d"
  "fig15_accuracy"
  "fig15_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
