# Empty dependencies file for ablation_cost_params.
# This may be replaced when dependencies are built.
