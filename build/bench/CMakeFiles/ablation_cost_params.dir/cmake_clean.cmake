file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_params.dir/ablation_cost_params.cpp.o"
  "CMakeFiles/ablation_cost_params.dir/ablation_cost_params.cpp.o.d"
  "ablation_cost_params"
  "ablation_cost_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
