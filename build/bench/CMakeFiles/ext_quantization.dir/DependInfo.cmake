
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_quantization.cpp" "bench/CMakeFiles/ext_quantization.dir/ext_quantization.cpp.o" "gcc" "bench/CMakeFiles/ext_quantization.dir/ext_quantization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/recsim_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/recsim_train.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/recsim_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/recsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/recsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/recsim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/recsim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recsim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
