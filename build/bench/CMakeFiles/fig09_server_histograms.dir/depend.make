# Empty dependencies file for fig09_server_histograms.
# This may be replaced when dependencies are built.
