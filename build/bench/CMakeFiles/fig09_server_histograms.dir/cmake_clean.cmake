file(REMOVE_RECURSE
  "CMakeFiles/fig09_server_histograms.dir/fig09_server_histograms.cpp.o"
  "CMakeFiles/fig09_server_histograms.dir/fig09_server_histograms.cpp.o.d"
  "fig09_server_histograms"
  "fig09_server_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_server_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
