file(REMOVE_RECURSE
  "CMakeFiles/fig01_production_throughput.dir/fig01_production_throughput.cpp.o"
  "CMakeFiles/fig01_production_throughput.dir/fig01_production_throughput.cpp.o.d"
  "fig01_production_throughput"
  "fig01_production_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_production_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
