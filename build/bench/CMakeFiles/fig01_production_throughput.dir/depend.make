# Empty dependencies file for fig01_production_throughput.
# This may be replaced when dependencies are built.
