# Empty dependencies file for fig13_mlp_dims.
# This may be replaced when dependencies are built.
