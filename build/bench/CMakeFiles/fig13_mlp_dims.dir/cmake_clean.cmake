file(REMOVE_RECURSE
  "CMakeFiles/fig13_mlp_dims.dir/fig13_mlp_dims.cpp.o"
  "CMakeFiles/fig13_mlp_dims.dir/fig13_mlp_dims.cpp.o.d"
  "fig13_mlp_dims"
  "fig13_mlp_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mlp_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
