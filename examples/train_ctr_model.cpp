/**
 * @file
 * Functional training demo: build a synthetic click-through dataset,
 * train a small DLRM three ways — single-threaded, Hogwild, and EASGD
 * (the paper's production sync modes) — and compare convergence by
 * normalized entropy on a held-out split.
 *
 * Usage: train_ctr_model [examples] [threads]
 */
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/recsim.h"
#include "util/logging.h"
#include "util/string_utils.h"

using namespace recsim;

int
main(int argc, char** argv)
{
    const std::size_t examples =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24000;
    const std::size_t threads =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

    const auto m = model::DlrmConfig::tinyReplica(
        /*num_sparse=*/8, /*num_dense=*/13, /*hash_size=*/2000,
        /*emb_dim=*/16);
    std::cout << "Model: " << m.summary() << "\n";

    data::DatasetConfig ds_cfg;
    ds_cfg.num_dense = m.num_dense;
    ds_cfg.sparse = m.sparse;
    ds_cfg.seed = 7;
    data::SyntheticCtrDataset ds(ds_cfg);
    ds.materialize(examples);
    std::cout << "Dataset: " << examples << " synthetic examples, base "
              << "CTR " << util::fixed(ds.baseCtr() * 100.0, 1)
              << "%\n\n";

    util::TextTable table;
    table.header({"trainer", "steps", "train loss", "eval NE",
                  "accuracy", "wall (s)"});

    auto timed = [&](const std::string& label, auto run) {
        const auto start = std::chrono::steady_clock::now();
        const train::TrainResult result = run();
        const double secs = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start).count();
        table.row({label, std::to_string(result.steps),
                   util::fixed(result.final_train_loss, 4),
                   util::fixed(result.eval_ne, 4),
                   util::fixed(result.eval_accuracy * 100.0, 1) + "%",
                   util::fixed(secs, 2)});
    };

    train::TrainConfig base;
    base.batch_size = 64;
    base.learning_rate = 0.05f;
    base.epochs = 1;

    timed("single-thread", [&] {
        return train::trainSingleThread(m, ds, base, 4000);
    });
    timed(util::format("hogwild x{}", threads), [&] {
        train::HogwildConfig cfg;
        cfg.base = base;
        cfg.num_threads = threads;
        return train::trainHogwild(m, ds, cfg, 4000);
    });
    timed(util::format("easgd x{} (tau=4)", threads), [&] {
        train::EasgdConfig cfg;
        cfg.base = base;
        cfg.num_workers = threads;
        cfg.sync_period = 4;
        return train::trainEasgd(m, ds, cfg, 4000);
    });
    timed(util::format("shadow_sync x{}", threads), [&] {
        train::ShadowSyncConfig cfg;
        cfg.base = base;
        cfg.num_workers = threads;
        return train::trainShadowSync(m, ds, cfg, 4000);
    });

    std::cout << table.render() << "\n";
    std::cout << "NE < 1.0 beats always-predicting-the-base-rate; the "
                 "asynchronous schemes trade a\nlittle NE for "
                 "parallelism, as Section VI-C discusses.\n";
    return 0;
}
