/**
 * @file
 * Quickstart: the 60-second tour of the recsim public API.
 *
 *  1. Describe a DLRM model architecture (or use a Table II factory).
 *  2. Describe a training system (platform + placement + servers).
 *  3. Ask the Estimator for throughput, bottleneck and power efficiency.
 *  4. Compare setups the way the paper's Table III does.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <iostream>

#include "core/recsim.h"
#include "util/string_utils.h"

using namespace recsim;

int
main()
{
    // --- 1. A model: 26 sparse features, 256 dense, DLRM-style. ----
    model::DlrmConfig m = model::DlrmConfig::testSuite(
        /*num_dense=*/256, /*num_sparse=*/26, /*hash_size=*/1000000);
    m.name = "quickstart_model";
    std::cout << m.summary() << "\n\n";

    // --- 2. Two systems: a CPU fleet slice and one Big Basin. ------
    const auto cpu = cost::SystemConfig::cpuSetup(
        /*trainers=*/4, /*sparse_ps=*/4, /*dense_ps=*/1,
        /*batch=*/200);
    const auto gpu = cost::SystemConfig::bigBasinSetup(
        placement::EmbeddingPlacement::GpuMemory, /*batch_per_gpu=*/1600);

    // --- 3. Estimate. -----------------------------------------------
    core::Estimator estimator;
    for (const auto& [label, sys] : {std::pair{"CPU fleet", cpu},
                                     std::pair{"Big Basin", gpu}}) {
        const auto est = estimator.estimate(m, sys);
        std::cout << label << ": " << sys.summary() << "\n";
        if (!est.feasible) {
            std::cout << "  infeasible: " << est.infeasible_reason
                      << "\n";
            continue;
        }
        std::cout << "  throughput  "
                  << util::fixed(est.throughput / 1000.0, 1)
                  << "k examples/s  (bottleneck: " << est.bottleneck
                  << ")\n"
                  << "  power       " << est.power_watts << " W  ->  "
                  << util::fixed(est.perfPerWatt(), 1)
                  << " examples/s/W\n";
        std::cout << "  iteration breakdown:";
        for (const auto& phase : est.breakdown) {
            if (phase.seconds > 1e-6) {
                std::cout << "  " << phase.name << "="
                          << util::fixed(phase.seconds * 1e3, 2) << "ms";
            }
        }
        std::cout << "\n\n";
    }

    // --- 4. Relative comparison (Table III style). -------------------
    const auto cmp = estimator.compare(m, cpu, gpu);
    std::cout << "GPU vs CPU: "
              << util::fixed(cmp.relative_throughput, 2)
              << "x throughput, "
              << util::fixed(cmp.relative_power_efficiency, 2)
              << "x power efficiency\n";

    // --- Bonus: let the advisor pick the placement. ------------------
    const auto ranked = estimator.rankPlacements(m, gpu);
    std::cout << "\nPlacement ranking on Big Basin:\n";
    for (const auto& setup : ranked) {
        std::cout << "  " << placement::toString(setup.system.placement)
                  << ": "
                  << util::fixed(setup.estimate.throughput / 1000.0, 1)
                  << "k examples/s\n";
    }
    return 0;
}
