/**
 * @file
 * Capacity planner: given a production model and a target training
 * throughput, size the CPU fleet (trainers + parameter servers) and
 * compare it against GPU-server alternatives on throughput-per-watt —
 * the datacenter-provisioning question behind the paper's Section IV
 * ("Number of Servers") and Table III.
 *
 * Usage: capacity_planner [target_kexamples_per_s]
 */
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/recsim.h"
#include "util/logging.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    const double target =
        (argc > 1 ? std::strtod(argv[1], nullptr) : 500.0) * 1000.0;
    const auto m = model::DlrmConfig::m1Prod();

    std::cout << "Capacity plan for " << m.name << " at "
              << util::fixed(target / 1000.0, 0)
              << "k examples/s\n" << m.summary() << "\n\n";

    core::Estimator estimator;

    // --- CPU fleet: grow trainers until the target is met, adding ----
    // --- sparse PS whenever they become the bottleneck. --------------
    std::size_t trainers = 1, sparse_ps = 4, dense_ps = 1;
    cost::IterationEstimate cpu_est;
    for (int step = 0; step < 200; ++step) {
        const auto sys = cost::SystemConfig::cpuSetup(
            trainers, sparse_ps, dense_ps, 200, 1);
        cpu_est = estimator.estimate(m, sys);
        if (!cpu_est.feasible) {
            ++sparse_ps;
            continue;
        }
        if (cpu_est.throughput >= target)
            break;
        if (cpu_est.bottleneck == "sparse_ps")
            ++sparse_ps;
        else if (cpu_est.bottleneck == "dense_ps")
            ++dense_ps;
        else
            ++trainers;
    }

    util::TextTable table;
    table.header({"setup", "servers", "throughput", "power",
                  "examples/s/W"});
    table.row({
        util::format("CPU fleet ({} tr, {} sPS, {} dPS)", trainers,
                     sparse_ps, dense_ps),
        std::to_string(trainers + sparse_ps + dense_ps),
        util::fixed(cpu_est.throughput / 1000.0, 0) + "k",
        util::fixed(cpu_est.power_watts / 1000.0, 1) + " kW",
        util::fixed(cpu_est.perfPerWatt(), 1),
    });

    // --- GPU alternatives: how many Big Basins / Zions? --------------
    auto gpu_row = [&](const std::string& label,
                       const cost::SystemConfig& one_server) {
        const auto est = estimator.estimate(m, one_server);
        if (!est.feasible) {
            table.row({label, "-", "infeasible", "-", "-"});
            return;
        }
        const auto servers = static_cast<std::size_t>(
            std::ceil(target / est.throughput));
        table.row({
            label, std::to_string(servers),
            util::fixed(est.throughput * servers / 1000.0, 0) + "k",
            util::fixed(est.power_watts * servers / 1000.0, 1) + " kW",
            util::fixed(est.perfPerWatt(), 1),
        });
    };
    gpu_row("Big Basin (EMB=gpu_memory)",
            cost::SystemConfig::bigBasinSetup(
                EmbeddingPlacement::GpuMemory, 1600));
    gpu_row("Zion (EMB=host_memory)",
            cost::SystemConfig::zionSetup(
                EmbeddingPlacement::HostMemory, 1600));

    std::cout << table.render() << "\n";
    std::cout <<
        "Data-parallel GPU servers scale by replication (model quality "
        "permitting); the CPU\nfleet scales trainers until the sparse "
        "parameter servers saturate, then must grow PS\ntoo. For "
        "embedding-friendly models the GPU servers win per-watt — "
        "Table III's story.\n";
    return 0;
}
