/**
 * @file
 * What-if CLI: estimate any model/system combination from the command
 * line — the interactive version of the paper's design-space study,
 * including the extension knobs (quantization, caching, scale-out).
 *
 * Usage:
 *   whatif [--model m1|m2|m3|test] [--dense N] [--sparse N] [--hash N]
 *          [--platform cpu|bigbasin|zion] [--placement gpu|host|remote|hybrid]
 *          [--batch N] [--trainers N] [--sparse-ps N] [--hogwild N]
 *          [--bpe 4|2|1|0.5] [--cache-gb X]
 *
 * Examples:
 *   whatif --model m3 --platform bigbasin --placement remote --sparse-ps 8 --hogwild 4
 *   whatif --model m3 --platform bigbasin --placement gpu --bpe 2
 *   whatif --model test --dense 1024 --sparse 64 --platform zion --placement host
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/recsim.h"
#include "util/logging.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

namespace {

std::map<std::string, std::string>
parseArgs(int argc, char** argv)
{
    std::map<std::string, std::string> args;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            util::fatal("expected --flag value pairs, got '{}'",
                        argv[i]);
        args[argv[i] + 2] = argv[i + 1];
    }
    return args;
}

std::string
get(const std::map<std::string, std::string>& args,
    const std::string& key, const std::string& fallback)
{
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = parseArgs(argc, argv);

    // ---- Model. ------------------------------------------------------
    const std::string model_name = get(args, "model", "m1");
    model::DlrmConfig m;
    if (model_name == "m1") {
        m = model::DlrmConfig::m1Prod();
    } else if (model_name == "m2") {
        m = model::DlrmConfig::m2Prod();
    } else if (model_name == "m3") {
        m = model::DlrmConfig::m3Prod();
    } else if (model_name == "test") {
        m = model::DlrmConfig::testSuite(
            std::strtoul(get(args, "dense", "256").c_str(), nullptr, 10),
            std::strtoul(get(args, "sparse", "32").c_str(), nullptr, 10),
            std::strtoull(get(args, "hash", "100000").c_str(), nullptr,
                          10));
    } else {
        util::fatal("unknown --model '{}' (m1|m2|m3|test)", model_name);
    }

    // ---- System. -----------------------------------------------------
    const std::string platform = get(args, "platform", "bigbasin");
    const std::string placement_name = get(args, "placement", "gpu");
    const std::size_t batch = std::strtoul(
        get(args, "batch", platform == "cpu" ? "200" : "1600").c_str(),
        nullptr, 10);
    const std::size_t trainers =
        std::strtoul(get(args, "trainers", "1").c_str(), nullptr, 10);
    const std::size_t sparse_ps =
        std::strtoul(get(args, "sparse-ps", "8").c_str(), nullptr, 10);
    const std::size_t hogwild =
        std::strtoul(get(args, "hogwild", "1").c_str(), nullptr, 10);

    EmbeddingPlacement placement;
    if (placement_name == "gpu")
        placement = EmbeddingPlacement::GpuMemory;
    else if (placement_name == "host")
        placement = EmbeddingPlacement::HostMemory;
    else if (placement_name == "remote")
        placement = EmbeddingPlacement::RemotePs;
    else if (placement_name == "hybrid")
        placement = EmbeddingPlacement::Hybrid;
    else
        util::fatal("unknown --placement '{}' (gpu|host|remote|hybrid)",
                    placement_name);

    cost::SystemConfig sys;
    if (platform == "cpu") {
        sys = cost::SystemConfig::cpuSetup(trainers, sparse_ps, 2, batch,
                                           hogwild);
    } else if (platform == "bigbasin") {
        sys = cost::SystemConfig::bigBasinSetup(
            placement, batch,
            placement == EmbeddingPlacement::RemotePs ? sparse_ps : 0);
        sys.num_trainers = trainers;
        sys.hogwild_threads = hogwild;
    } else if (platform == "zion") {
        sys = cost::SystemConfig::zionSetup(
            placement, batch,
            placement == EmbeddingPlacement::RemotePs ? sparse_ps : 0);
        sys.num_trainers = trainers;
        sys.hogwild_threads = hogwild;
    } else {
        util::fatal("unknown --platform '{}' (cpu|bigbasin|zion)",
                    platform);
    }
    sys.emb_bytes_per_element =
        std::strtod(get(args, "bpe", "4").c_str(), nullptr);
    sys.remote_cache_bytes =
        std::strtod(get(args, "cache-gb", "0").c_str(), nullptr) * 1e9;

    // ---- Estimate and report. ----------------------------------------
    std::cout << m.summary() << "\n" << sys.summary() << "\n\n";

    cost::IterationModel im(m, sys);
    const auto est = im.estimate();
    if (!est.feasible) {
        std::cout << "INFEASIBLE: " << est.infeasible_reason << "\n";
        std::cout << "\nFeasible placements on this platform:\n";
        core::Estimator estimator;
        for (const auto& option : estimator.rankPlacements(m, sys)) {
            std::cout << "  "
                      << placement::toString(option.system.placement)
                      << ": "
                      << util::fixed(
                             option.estimate.throughput / 1000.0, 0)
                      << "k examples/s\n";
        }
        return 1;
    }

    util::TextTable table;
    table.header({"metric", "value"});
    table.row({"throughput",
               util::fixed(est.throughput / 1000.0, 1) +
                   "k examples/s"});
    table.row({"iteration time",
               util::fixed(est.iteration_seconds * 1e3, 2) + " ms"});
    table.row({"bottleneck", est.bottleneck});
    table.row({"power", util::fixed(est.power_watts / 1000.0, 2) +
                   " kW"});
    table.row({"efficiency",
               util::fixed(est.perfPerWatt(), 1) + " examples/s/W"});
    if (im.plan().replicated)
        table.row({"tables", "replicated per GPU"});
    else
        table.row({"tables", util::format(
                       "sharded across {} device(s)",
                       std::max<std::size_t>(
                           im.plan().partition.shardsUsed(), 1))});
    if (sys.remote_cache_bytes > 0.0) {
        table.row({"cache hit fraction",
                   util::fixed(im.remoteCacheHitFraction() * 100.0, 1) +
                       "%"});
    }
    std::cout << table.render() << "\nbreakdown:";
    for (const auto& phase : est.breakdown) {
        if (phase.seconds > 1e-6) {
            std::cout << "  " << phase.name << "="
                      << util::fixed(phase.seconds * 1e3, 2) << "ms";
        }
    }
    std::cout << "\n";
    return 0;
}
