/**
 * @file
 * Placement advisor: the workflow an ML engineer faces in Section IV —
 * "my model grew; where should the embedding tables live, and on which
 * platform should I train?"
 *
 * Sweeps a model's embedding hash size from small to production scale
 * and, at every point, reports each platform's best feasible placement
 * and throughput. Shows the placement *shifting* exactly as Fig 1's
 * annotations describe: GPU memory while tables fit, then hybrid/remote
 * on Big Basin, host memory on Zion.
 *
 * Usage: placement_advisor [num_sparse] [num_dense]
 */
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/recsim.h"
#include "util/string_utils.h"

using namespace recsim;
using placement::EmbeddingPlacement;

int
main(int argc, char** argv)
{
    const std::size_t num_sparse =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
    const std::size_t num_dense =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 512;

    std::cout << "Placement advisor: " << num_sparse << " sparse / "
              << num_dense << " dense features, d=64, MLP 512^3\n\n";

    core::Estimator estimator;
    util::TextTable table;
    table.header({"hash size", "emb size", "BigBasin best",
                  "BB thr", "Zion best", "Zion thr", "CPU fleet thr"});

    for (uint64_t hash : {10000ULL, 100000ULL, 1000000ULL, 4000000ULL,
                          10000000ULL, 20000000ULL}) {
        const auto m = model::DlrmConfig::testSuite(num_dense, num_sparse,
                                                    hash);

        auto best_of = [&](const cost::SystemConfig& base)
            -> std::pair<std::string, std::string> {
            auto ranked = estimator.rankPlacements(m, base);
            // Fall back to remote PS with extra servers when on-box
            // placements are infeasible.
            if (ranked.empty()) {
                auto remote = base;
                remote.placement = EmbeddingPlacement::RemotePs;
                remote.num_sparse_ps = 16;
                const auto est = estimator.estimate(m, remote);
                if (!est.feasible)
                    return {"none", "-"};
                return {"remote_ps(16)",
                        util::fixed(est.throughput / 1000.0, 0) + "k"};
            }
            return {placement::toString(ranked.front().system.placement),
                    util::fixed(
                        ranked.front().estimate.throughput / 1000.0, 0) +
                        "k"};
        };

        const auto bb = best_of(cost::SystemConfig::bigBasinSetup(
            EmbeddingPlacement::GpuMemory, 1600));
        const auto zion = best_of(cost::SystemConfig::zionSetup(
            EmbeddingPlacement::GpuMemory, 1600));

        // CPU fleet sized to hold the tables: one sparse PS per 140 GB.
        const double emb_gb = m.embeddingBytes() / 1e9;
        const auto sparse_ps = static_cast<std::size_t>(
            std::max(1.0, std::ceil(emb_gb * 1.25 / 140.0)));
        const auto cpu_est = estimator.estimate(
            m, cost::SystemConfig::cpuSetup(8, sparse_ps, 2, 200, 1));

        table.row({
            util::countToString(static_cast<double>(hash)),
            util::fixed(emb_gb, 1) + " GB",
            bb.first, bb.second, zion.first, zion.second,
            cpu_est.feasible
                ? util::fixed(cpu_est.throughput / 1000.0, 0) + "k"
                : std::string("n/f"),
        });
    }
    std::cout << table.render() << "\n";
    std::cout <<
        "Reading the table: while tables fit in HBM, Big Basin wants "
        "them in GPU memory; once\nthey outgrow it, the advisor shifts "
        "to hybrid/remote and the throughput advantage fades.\nZion "
        "keeps everything in its 2 TB host memory and degrades "
        "gracefully — the paper's\ncentral capacity argument.\n";
    return 0;
}
